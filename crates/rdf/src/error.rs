//! Error types shared across the RDF substrate.

use std::fmt;

/// Errors raised while parsing or processing RDF data.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum RdfError {
    /// A line of N-Triples input could not be parsed.
    ///
    /// Carries the 1-based line number and a human readable description.
    Parse { line: usize, message: String },
    /// A term id was looked up that is not present in the dictionary.
    UnknownTermId(u64),
    /// A term was expected to be present in the dictionary but is not.
    UnknownTerm(String),
    /// An IRI failed basic well-formedness checks (empty, embedded spaces, …).
    InvalidIri(String),
    /// A literal had an inconsistent shape (e.g. both language tag and datatype).
    InvalidLiteral(String),
}

impl fmt::Display for RdfError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            RdfError::Parse { line, message } => {
                write!(f, "N-Triples parse error at line {line}: {message}")
            }
            RdfError::UnknownTermId(id) => write!(f, "unknown term id {id}"),
            RdfError::UnknownTerm(t) => write!(f, "term not in dictionary: {t}"),
            RdfError::InvalidIri(iri) => write!(f, "invalid IRI: {iri}"),
            RdfError::InvalidLiteral(l) => write!(f, "invalid literal: {l}"),
        }
    }
}

impl std::error::Error for RdfError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_parse_error_includes_line() {
        let e = RdfError::Parse {
            line: 42,
            message: "missing dot".into(),
        };
        let s = e.to_string();
        assert!(s.contains("42"));
        assert!(s.contains("missing dot"));
    }

    #[test]
    fn display_unknown_term_id() {
        assert_eq!(RdfError::UnknownTermId(7).to_string(), "unknown term id 7");
    }

    #[test]
    fn error_is_std_error() {
        fn assert_err<E: std::error::Error>(_e: &E) {}
        assert_err(&RdfError::InvalidIri("x".into()));
    }
}
