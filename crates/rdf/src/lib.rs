//! RDF substrate for the TurboHOM++ reproduction.
//!
//! This crate provides everything the matching engine needs *below* the graph
//! level:
//!
//! * [`Term`] — the RDF term model (IRIs, blank nodes, plain/typed/language
//!   literals) with N-Triples-compatible formatting.
//! * [`Dictionary`] — dictionary encoding between terms and dense integer
//!   [`TermId`]s, exactly the style RDF-3X and TurboHOM++ rely on so that the
//!   engine works over integers only and "the dictionary look-up time" can be
//!   excluded from timings as the paper does (Section 7.1).
//! * [`Triple`] / [`TripleStore`] — an append-only, deduplicated in-memory
//!   triple store over encoded ids.
//! * [`ntriples`] — a streaming N-Triples parser and serializer used by the
//!   examples, tests and dataset round-trips.
//! * [`inference`] — the RDFS-subset forward chaining (subClassOf /
//!   subPropertyOf transitive closure, type inheritance, domain/range) that
//!   the LUBM benchmark setup requires ("we load the original triples as well
//!   as inferred triples", Section 7.1).
//! * [`vocab`] — well-known IRIs (`rdf:type`, `rdfs:subClassOf`, …).

pub mod dictionary;
pub mod error;
pub mod inference;
pub mod ntriples;
pub mod term;
pub mod triple;
pub mod vocab;

pub use dictionary::{Dictionary, TermId};
pub use error::RdfError;
pub use inference::{InferenceConfig, InferenceEngine, InferenceStats};
pub use ntriples::{parse_ntriples, parse_ntriples_line, serialize_ntriples};
pub use term::Term;
pub use triple::{Dataset, Triple, TripleStore};
