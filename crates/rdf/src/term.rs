//! The RDF term model: IRIs, blank nodes and literals.
//!
//! Terms are the *decoded* (string) form of RDF nodes. The matching engine
//! never touches them at query time — everything is dictionary encoded into
//! [`TermId`](crate::dictionary::TermId)s first — but the parser, the dataset
//! generators and result rendering all work in terms of [`Term`].

use crate::error::RdfError;
use std::borrow::Cow;
use std::fmt;

/// An RDF term: the subject, predicate or object of a triple.
///
/// The representation follows the RDF 1.1 abstract syntax restricted to what
/// the benchmarks in the paper need:
///
/// * IRIs (subjects, predicates, objects),
/// * blank nodes (subjects, objects),
/// * literals — plain, language tagged or datatyped (objects only).
#[derive(Debug, Clone, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub enum Term {
    /// An IRI such as `http://example.org/alice`.
    Iri(String),
    /// A blank node with a local label, e.g. `_:b0`.
    BlankNode(String),
    /// A literal with optional datatype IRI or language tag.
    Literal {
        /// The lexical form, e.g. `"42"` or `"john@dept1.univ1.edu"`.
        lexical: String,
        /// Datatype IRI, if any (e.g. `http://www.w3.org/2001/XMLSchema#integer`).
        datatype: Option<String>,
        /// Language tag, if any (e.g. `en`). Mutually exclusive with `datatype`.
        language: Option<String>,
    },
}

impl Term {
    /// Creates an IRI term.
    pub fn iri(value: impl Into<String>) -> Self {
        Term::Iri(value.into())
    }

    /// Creates a blank node term from a local label (without the `_:` prefix).
    pub fn blank(label: impl Into<String>) -> Self {
        Term::BlankNode(label.into())
    }

    /// Creates a plain literal (no datatype, no language tag).
    pub fn literal(lexical: impl Into<String>) -> Self {
        Term::Literal {
            lexical: lexical.into(),
            datatype: None,
            language: None,
        }
    }

    /// Creates a typed literal.
    pub fn typed_literal(lexical: impl Into<String>, datatype: impl Into<String>) -> Self {
        Term::Literal {
            lexical: lexical.into(),
            datatype: Some(datatype.into()),
            language: None,
        }
    }

    /// Creates a language-tagged literal.
    pub fn lang_literal(lexical: impl Into<String>, language: impl Into<String>) -> Self {
        Term::Literal {
            lexical: lexical.into(),
            datatype: None,
            language: Some(language.into()),
        }
    }

    /// Creates an integer literal with the `xsd:integer` datatype.
    pub fn integer(value: i64) -> Self {
        Term::typed_literal(value.to_string(), crate::vocab::XSD_INTEGER)
    }

    /// Creates a double literal with the `xsd:double` datatype.
    pub fn double(value: f64) -> Self {
        Term::typed_literal(format!("{value}"), crate::vocab::XSD_DOUBLE)
    }

    /// Returns `true` if the term is an IRI.
    pub fn is_iri(&self) -> bool {
        matches!(self, Term::Iri(_))
    }

    /// Returns `true` if the term is a blank node.
    pub fn is_blank(&self) -> bool {
        matches!(self, Term::BlankNode(_))
    }

    /// Returns `true` if the term is a literal.
    pub fn is_literal(&self) -> bool {
        matches!(self, Term::Literal { .. })
    }

    /// Returns the IRI value if this term is an IRI.
    pub fn as_iri(&self) -> Option<&str> {
        match self {
            Term::Iri(i) => Some(i),
            _ => None,
        }
    }

    /// Returns the lexical form if this term is a literal.
    pub fn as_literal(&self) -> Option<&str> {
        match self {
            Term::Literal { lexical, .. } => Some(lexical),
            _ => None,
        }
    }

    /// Attempts to interpret a literal as an `i64`.
    ///
    /// Plain and `xsd:integer`/`xsd:int`/`xsd:long` typed literals are
    /// accepted; everything else yields `None`.
    pub fn as_integer(&self) -> Option<i64> {
        match self {
            Term::Literal { lexical, .. } => lexical.trim().parse::<i64>().ok(),
            _ => None,
        }
    }

    /// Attempts to interpret a literal as an `f64`.
    pub fn as_double(&self) -> Option<f64> {
        match self {
            Term::Literal { lexical, .. } => lexical.trim().parse::<f64>().ok(),
            _ => None,
        }
    }

    /// Validates basic well-formedness of the term.
    ///
    /// IRIs must be non-empty and free of whitespace and angle brackets;
    /// literals may not carry both a datatype and a language tag.
    pub fn validate(&self) -> Result<(), RdfError> {
        match self {
            Term::Iri(iri) => {
                if iri.is_empty()
                    || iri.chars().any(|c| {
                        c.is_whitespace()
                            || c == '<'
                            || c == '>'
                            || c == '"'
                            || c == '{'
                            || c == '}'
                    })
                {
                    Err(RdfError::InvalidIri(iri.clone()))
                } else {
                    Ok(())
                }
            }
            Term::BlankNode(label) => {
                if label.is_empty() || label.chars().any(|c| c.is_whitespace()) {
                    Err(RdfError::InvalidIri(format!("_:{label}")))
                } else {
                    Ok(())
                }
            }
            Term::Literal {
                datatype, language, ..
            } => {
                if datatype.is_some() && language.is_some() {
                    Err(RdfError::InvalidLiteral(self.to_string()))
                } else {
                    Ok(())
                }
            }
        }
    }

    /// Escapes the characters N-Triples requires to be escaped in literals.
    fn escape_literal(lexical: &str) -> Cow<'_, str> {
        if lexical
            .chars()
            .any(|c| c == '\\' || c == '"' || c == '\n' || c == '\r' || c == '\t')
        {
            let mut out = String::with_capacity(lexical.len() + 4);
            for c in lexical.chars() {
                match c {
                    '\\' => out.push_str("\\\\"),
                    '"' => out.push_str("\\\""),
                    '\n' => out.push_str("\\n"),
                    '\r' => out.push_str("\\r"),
                    '\t' => out.push_str("\\t"),
                    other => out.push(other),
                }
            }
            Cow::Owned(out)
        } else {
            Cow::Borrowed(lexical)
        }
    }
}

impl fmt::Display for Term {
    /// Formats the term in N-Triples syntax.
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Term::Iri(iri) => write!(f, "<{iri}>"),
            Term::BlankNode(label) => write!(f, "_:{label}"),
            Term::Literal {
                lexical,
                datatype,
                language,
            } => {
                write!(f, "\"{}\"", Term::escape_literal(lexical))?;
                if let Some(lang) = language {
                    write!(f, "@{lang}")?;
                } else if let Some(dt) = datatype {
                    write!(f, "^^<{dt}>")?;
                }
                Ok(())
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::vocab;

    #[test]
    fn iri_display_is_angle_bracketed() {
        assert_eq!(
            Term::iri("http://ex.org/a").to_string(),
            "<http://ex.org/a>"
        );
    }

    #[test]
    fn blank_node_display() {
        assert_eq!(Term::blank("b0").to_string(), "_:b0");
    }

    #[test]
    fn plain_literal_display() {
        assert_eq!(Term::literal("hello").to_string(), "\"hello\"");
    }

    #[test]
    fn typed_literal_display() {
        let t = Term::typed_literal("42", vocab::XSD_INTEGER);
        assert_eq!(t.to_string(), format!("\"42\"^^<{}>", vocab::XSD_INTEGER));
    }

    #[test]
    fn lang_literal_display() {
        assert_eq!(Term::lang_literal("chat", "fr").to_string(), "\"chat\"@fr");
    }

    #[test]
    fn literal_escaping_round() {
        let t = Term::literal("a\"b\\c\nd");
        assert_eq!(t.to_string(), "\"a\\\"b\\\\c\\nd\"");
    }

    #[test]
    fn integer_helpers() {
        let t = Term::integer(17);
        assert_eq!(t.as_integer(), Some(17));
        assert_eq!(t.as_double(), Some(17.0));
        assert!(Term::iri("x").as_integer().is_none());
    }

    #[test]
    fn predicates_kind_checks() {
        assert!(Term::iri("x").is_iri());
        assert!(!Term::iri("x").is_literal());
        assert!(Term::literal("x").is_literal());
        assert!(Term::blank("x").is_blank());
    }

    #[test]
    fn validate_rejects_bad_iri() {
        assert!(Term::iri("").validate().is_err());
        assert!(Term::iri("http://ex.org/has space").validate().is_err());
        assert!(Term::iri("http://ex.org/ok").validate().is_ok());
    }

    #[test]
    fn validate_rejects_literal_with_both_tags() {
        let t = Term::Literal {
            lexical: "x".into(),
            datatype: Some("http://dt".into()),
            language: Some("en".into()),
        };
        assert!(t.validate().is_err());
    }

    #[test]
    fn ordering_is_total_and_stable() {
        let mut terms = vec![
            Term::literal("z"),
            Term::iri("http://a"),
            Term::blank("b"),
            Term::iri("http://b"),
        ];
        terms.sort();
        let again = {
            let mut t = terms.clone();
            t.sort();
            t
        };
        assert_eq!(terms, again);
    }
}
