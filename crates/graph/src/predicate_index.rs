//! The predicate index (paper Section 4.2, `ChooseStartQueryVertex`).
//!
//! "In order to handle such queries \[query vertices with no label or ID at
//! all\], we maintain an index called the predicate index where a key is a
//! predicate, and a value is a pair of a list of subject IDs and a list of
//! object IDs."
//!
//! The index is also what the hash-join baseline scans.

use crate::ids::{Direction, ELabel, VertexId};
use crate::labeled_graph::LabeledGraph;
use crate::ops;
use turbohom_storage::{FlatCsr, FlatVec, SectionCursor, SnapshotError, SnapshotWriter};

/// Snapshot section tags (component 0x04).
const TAG_PRED_SUBJECT_OFFSETS: u64 = 0x0401;
const TAG_PRED_SUBJECTS: u64 = 0x0402;
const TAG_PRED_OBJECT_OFFSETS: u64 = 0x0403;
const TAG_PRED_OBJECTS: u64 = 0x0404;
const TAG_PRED_EDGE_COUNTS: u64 = 0x0405;

/// Edge label → (sorted distinct subjects, sorted distinct objects).
#[derive(Debug, Clone, Default)]
pub struct PredicateIndex {
    subjects: FlatCsr<VertexId>,
    objects: FlatCsr<VertexId>,
    /// Number of edges per predicate (with duplicates across subjects).
    edge_counts: FlatVec<u64>,
}

impl PredicateIndex {
    /// Builds the index from a graph.
    pub fn build(graph: &LabeledGraph) -> Self {
        let k = graph.edge_label_count();
        let mut subjects: Vec<Vec<VertexId>> = vec![Vec::new(); k];
        let mut objects: Vec<Vec<VertexId>> = vec![Vec::new(); k];
        let mut edge_counts = vec![0u64; k];
        for v in graph.vertices() {
            for el in graph.incident_edge_labels(v, Direction::Outgoing) {
                let ns = graph.neighbors(v, Direction::Outgoing, el);
                if !ns.is_empty() {
                    subjects[el.index()].push(v);
                    edge_counts[el.index()] += ns.len() as u64;
                    objects[el.index()].extend_from_slice(ns);
                }
            }
        }
        for list in objects.iter_mut() {
            ops::canonicalize(list);
        }
        debug_assert!(subjects.iter().all(|l| ops::is_sorted_set(l)));
        PredicateIndex {
            subjects: FlatCsr::from_rows(&subjects),
            objects: FlatCsr::from_rows(&objects),
            edge_counts: edge_counts.into(),
        }
    }

    /// Sorted distinct subjects of edges labeled `el`.
    pub fn subjects(&self, el: ELabel) -> &[VertexId] {
        self.subjects.row(el.index())
    }

    /// Sorted distinct objects of edges labeled `el`.
    pub fn objects(&self, el: ELabel) -> &[VertexId] {
        self.objects.row(el.index())
    }

    /// Vertices that appear on the `direction` side of edges labeled `el`
    /// (subjects for `Outgoing`, objects for `Incoming`).
    pub fn endpoints(&self, el: ELabel, direction: Direction) -> &[VertexId] {
        match direction {
            Direction::Outgoing => self.subjects(el),
            Direction::Incoming => self.objects(el),
        }
    }

    /// Number of edges carrying label `el`.
    pub fn edge_count(&self, el: ELabel) -> usize {
        self.edge_counts.get(el.index()).map_or(0, |&c| c as usize)
    }

    /// Number of predicates indexed.
    pub fn predicate_count(&self) -> usize {
        self.subjects.num_rows()
    }

    /// Serializes the index as snapshot sections.
    pub fn write_sections(&self, w: &mut SnapshotWriter) {
        w.section(TAG_PRED_SUBJECT_OFFSETS, self.subjects.offsets());
        w.section(TAG_PRED_SUBJECTS, self.subjects.data());
        w.section(TAG_PRED_OBJECT_OFFSETS, self.objects.offsets());
        w.section(TAG_PRED_OBJECTS, self.objects.data());
        w.section(TAG_PRED_EDGE_COUNTS, &self.edge_counts);
    }

    /// Reconstructs the index reading its arrays in place from a snapshot.
    pub fn read_sections(cur: &mut SectionCursor<'_>) -> Result<Self, SnapshotError> {
        let subjects = FlatCsr::from_parts(
            cur.next_section(TAG_PRED_SUBJECT_OFFSETS)?,
            cur.next_section(TAG_PRED_SUBJECTS)?,
        )?;
        let objects = FlatCsr::from_parts(
            cur.next_section(TAG_PRED_OBJECT_OFFSETS)?,
            cur.next_section(TAG_PRED_OBJECTS)?,
        )?;
        let edge_counts: FlatVec<u64> = cur.next_section(TAG_PRED_EDGE_COUNTS)?;
        if subjects.num_rows() != objects.num_rows() || edge_counts.len() != subjects.num_rows() {
            return Err(SnapshotError::Malformed(
                "predicate index row counts disagree".into(),
            ));
        }
        Ok(PredicateIndex {
            subjects,
            objects,
            edge_counts,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::builder::LabeledGraphBuilder;
    use crate::ids::VLabel;

    fn sample() -> (LabeledGraph, PredicateIndex) {
        let mut b = LabeledGraphBuilder::new();
        let v0 = b.add_vertex(vec![VLabel(0)]);
        let v1 = b.add_vertex(vec![VLabel(1)]);
        let v2 = b.add_vertex(vec![VLabel(1)]);
        let v3 = b.add_vertex(vec![]);
        // p0: v0→v1, v0→v2, v2→v1 ; p1: v3→v0
        b.add_edge(v0, v1, ELabel(0));
        b.add_edge(v0, v2, ELabel(0));
        b.add_edge(v2, v1, ELabel(0));
        b.add_edge(v3, v0, ELabel(1));
        let g = b.build();
        let idx = PredicateIndex::build(&g);
        (g, idx)
    }

    #[test]
    fn subjects_and_objects_are_distinct_sorted() {
        let (_, idx) = sample();
        assert_eq!(idx.subjects(ELabel(0)), &[VertexId(0), VertexId(2)]);
        assert_eq!(idx.objects(ELabel(0)), &[VertexId(1), VertexId(2)]);
        assert_eq!(idx.subjects(ELabel(1)), &[VertexId(3)]);
        assert_eq!(idx.objects(ELabel(1)), &[VertexId(0)]);
    }

    #[test]
    fn edge_counts_include_duplicate_subjects() {
        let (_, idx) = sample();
        assert_eq!(idx.edge_count(ELabel(0)), 3);
        assert_eq!(idx.edge_count(ELabel(1)), 1);
        assert_eq!(idx.edge_count(ELabel(7)), 0);
    }

    #[test]
    fn endpoints_respects_direction() {
        let (_, idx) = sample();
        assert_eq!(
            idx.endpoints(ELabel(0), Direction::Outgoing),
            idx.subjects(ELabel(0))
        );
        assert_eq!(
            idx.endpoints(ELabel(0), Direction::Incoming),
            idx.objects(ELabel(0))
        );
    }

    #[test]
    fn unknown_predicate_is_empty() {
        let (_, idx) = sample();
        assert!(idx.subjects(ELabel(9)).is_empty());
        assert!(idx.objects(ELabel(9)).is_empty());
        assert_eq!(idx.predicate_count(), 2);
    }
}
