//! The predicate index (paper Section 4.2, `ChooseStartQueryVertex`).
//!
//! "In order to handle such queries \[query vertices with no label or ID at
//! all\], we maintain an index called the predicate index where a key is a
//! predicate, and a value is a pair of a list of subject IDs and a list of
//! object IDs."
//!
//! The index is also what the hash-join baseline scans.

use crate::ids::{Direction, ELabel, VertexId};
use crate::labeled_graph::LabeledGraph;
use crate::ops;

/// Edge label → (sorted distinct subjects, sorted distinct objects).
#[derive(Debug, Clone, Default)]
pub struct PredicateIndex {
    subjects: Vec<Vec<VertexId>>,
    objects: Vec<Vec<VertexId>>,
    /// Number of edges per predicate (with duplicates across subjects).
    edge_counts: Vec<usize>,
}

impl PredicateIndex {
    /// Builds the index from a graph.
    pub fn build(graph: &LabeledGraph) -> Self {
        let k = graph.edge_label_count();
        let mut subjects: Vec<Vec<VertexId>> = vec![Vec::new(); k];
        let mut objects: Vec<Vec<VertexId>> = vec![Vec::new(); k];
        let mut edge_counts = vec![0usize; k];
        for v in graph.vertices() {
            for el in graph.incident_edge_labels(v, Direction::Outgoing) {
                let ns = graph.neighbors(v, Direction::Outgoing, el);
                if !ns.is_empty() {
                    subjects[el.index()].push(v);
                    edge_counts[el.index()] += ns.len();
                    objects[el.index()].extend_from_slice(ns);
                }
            }
        }
        for list in objects.iter_mut() {
            ops::canonicalize(list);
        }
        debug_assert!(subjects.iter().all(|l| ops::is_sorted_set(l)));
        PredicateIndex {
            subjects,
            objects,
            edge_counts,
        }
    }

    /// Sorted distinct subjects of edges labeled `el`.
    pub fn subjects(&self, el: ELabel) -> &[VertexId] {
        self.subjects
            .get(el.index())
            .map(|v| v.as_slice())
            .unwrap_or(&[])
    }

    /// Sorted distinct objects of edges labeled `el`.
    pub fn objects(&self, el: ELabel) -> &[VertexId] {
        self.objects
            .get(el.index())
            .map(|v| v.as_slice())
            .unwrap_or(&[])
    }

    /// Vertices that appear on the `direction` side of edges labeled `el`
    /// (subjects for `Outgoing`, objects for `Incoming`).
    pub fn endpoints(&self, el: ELabel, direction: Direction) -> &[VertexId] {
        match direction {
            Direction::Outgoing => self.subjects(el),
            Direction::Incoming => self.objects(el),
        }
    }

    /// Number of edges carrying label `el`.
    pub fn edge_count(&self, el: ELabel) -> usize {
        self.edge_counts.get(el.index()).copied().unwrap_or(0)
    }

    /// Number of predicates indexed.
    pub fn predicate_count(&self) -> usize {
        self.subjects.len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::builder::LabeledGraphBuilder;
    use crate::ids::VLabel;

    fn sample() -> (LabeledGraph, PredicateIndex) {
        let mut b = LabeledGraphBuilder::new();
        let v0 = b.add_vertex(vec![VLabel(0)]);
        let v1 = b.add_vertex(vec![VLabel(1)]);
        let v2 = b.add_vertex(vec![VLabel(1)]);
        let v3 = b.add_vertex(vec![]);
        // p0: v0→v1, v0→v2, v2→v1 ; p1: v3→v0
        b.add_edge(v0, v1, ELabel(0));
        b.add_edge(v0, v2, ELabel(0));
        b.add_edge(v2, v1, ELabel(0));
        b.add_edge(v3, v0, ELabel(1));
        let g = b.build();
        let idx = PredicateIndex::build(&g);
        (g, idx)
    }

    #[test]
    fn subjects_and_objects_are_distinct_sorted() {
        let (_, idx) = sample();
        assert_eq!(idx.subjects(ELabel(0)), &[VertexId(0), VertexId(2)]);
        assert_eq!(idx.objects(ELabel(0)), &[VertexId(1), VertexId(2)]);
        assert_eq!(idx.subjects(ELabel(1)), &[VertexId(3)]);
        assert_eq!(idx.objects(ELabel(1)), &[VertexId(0)]);
    }

    #[test]
    fn edge_counts_include_duplicate_subjects() {
        let (_, idx) = sample();
        assert_eq!(idx.edge_count(ELabel(0)), 3);
        assert_eq!(idx.edge_count(ELabel(1)), 1);
        assert_eq!(idx.edge_count(ELabel(7)), 0);
    }

    #[test]
    fn endpoints_respects_direction() {
        let (_, idx) = sample();
        assert_eq!(
            idx.endpoints(ELabel(0), Direction::Outgoing),
            idx.subjects(ELabel(0))
        );
        assert_eq!(
            idx.endpoints(ELabel(0), Direction::Incoming),
            idx.objects(ELabel(0))
        );
    }

    #[test]
    fn unknown_predicate_is_empty() {
        let (_, idx) = sample();
        assert!(idx.subjects(ELabel(9)).is_empty());
        assert!(idx.objects(ELabel(9)).is_empty());
        assert_eq!(idx.predicate_count(), 2);
    }
}
