//! Identifier newtypes for the labeled-graph layer.
//!
//! The graph layer deliberately does **not** reuse the RDF
//! [`TermId`](turbohom_rdf::TermId): the type-aware transformation removes
//! type/class terms from the vertex space and assigns dense vertex ids,
//! dense vertex-label ids and dense edge-label ids. Keeping them as distinct
//! newtypes prevents the classic "mixed up id spaces" bug family at compile
//! time.

use std::fmt;
use turbohom_storage::Pod;

/// A data-graph vertex id (dense, 0-based).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
#[repr(transparent)]
pub struct VertexId(pub u32);

// Safety: repr(transparent) over u32 — no padding, no niches.
unsafe impl Pod for VertexId {}

impl VertexId {
    /// Returns the id as a `usize` index.
    #[inline]
    pub fn index(self) -> usize {
        self.0 as usize
    }
}

impl fmt::Display for VertexId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "v{}", self.0)
    }
}

/// A vertex label id (dense, 0-based). Under the type-aware transformation
/// a vertex label corresponds to an RDF class (e.g. `GraduateStudent`).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
#[repr(transparent)]
pub struct VLabel(pub u32);

// Safety: repr(transparent) over u32 — no padding, no niches.
unsafe impl Pod for VLabel {}

impl VLabel {
    /// Returns the id as a `usize` index.
    #[inline]
    pub fn index(self) -> usize {
        self.0 as usize
    }
}

impl fmt::Display for VLabel {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "L{}", self.0)
    }
}

/// An edge label id (dense, 0-based). Corresponds to an RDF predicate.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
#[repr(transparent)]
pub struct ELabel(pub u32);

// Safety: repr(transparent) over u32 — no padding, no niches.
unsafe impl Pod for ELabel {}

impl ELabel {
    /// Returns the id as a `usize` index.
    #[inline]
    pub fn index(self) -> usize {
        self.0 as usize
    }
}

impl fmt::Display for ELabel {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "e{}", self.0)
    }
}

/// Edge direction relative to a vertex.
///
/// `Outgoing` follows edges `v → w` (v is the subject), `Incoming` follows
/// edges `w → v` (v is the object). The matcher explores both, because a
/// SPARQL triple pattern constrains its subject *and* its object.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Direction {
    /// Follow edges from subject to object.
    Outgoing,
    /// Follow edges from object to subject.
    Incoming,
}

impl Direction {
    /// The opposite direction.
    pub fn reverse(self) -> Direction {
        match self {
            Direction::Outgoing => Direction::Incoming,
            Direction::Incoming => Direction::Outgoing,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_forms() {
        assert_eq!(VertexId(3).to_string(), "v3");
        assert_eq!(VLabel(2).to_string(), "L2");
        assert_eq!(ELabel(1).to_string(), "e1");
    }

    #[test]
    fn index_round_trip() {
        assert_eq!(VertexId(7).index(), 7);
        assert_eq!(VLabel(7).index(), 7);
        assert_eq!(ELabel(7).index(), 7);
    }

    #[test]
    fn direction_reverse_is_involution() {
        assert_eq!(Direction::Outgoing.reverse(), Direction::Incoming);
        assert_eq!(Direction::Incoming.reverse(), Direction::Outgoing);
        assert_eq!(Direction::Outgoing.reverse().reverse(), Direction::Outgoing);
    }

    #[test]
    fn ids_order_by_value() {
        let mut v = vec![VertexId(5), VertexId(1), VertexId(3)];
        v.sort();
        assert_eq!(v, vec![VertexId(1), VertexId(3), VertexId(5)]);
    }
}
