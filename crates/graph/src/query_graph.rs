//! The query-graph representation with the two-attribute vertex model
//! (paper Section 4.1).
//!
//! A query vertex carries
//!
//! * a **label attribute** — the set of vertex labels (classes) it must be a
//!   subset of on the matched data vertex, possibly empty;
//! * an **ID attribute** — an optional bound data vertex (a constant subject
//!   or object in the SPARQL query, e.g. `<http://univ0.edu>`);
//! * an optional variable name, used to project results.
//!
//! A query edge carries an optional edge label; `None` means a *variable
//! predicate*, which the e-graph homomorphism answers through the `Me`
//! edge-label mapping (Definition 2).

use crate::ids::{Direction, ELabel, VLabel, VertexId};

/// A query vertex.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct QueryVertex {
    /// The label attribute: every listed label must be carried by the data
    /// vertex this query vertex maps to.
    pub labels: Vec<VLabel>,
    /// The ID attribute: if set, the query vertex can only map to exactly
    /// this data vertex.
    pub bound: Option<VertexId>,
    /// The SPARQL variable this vertex corresponds to (for projection);
    /// `None` for constant vertices.
    pub variable: Option<String>,
}

impl QueryVertex {
    /// A variable query vertex with the given labels.
    pub fn variable(name: impl Into<String>, labels: Vec<VLabel>) -> Self {
        QueryVertex {
            labels: canonical(labels),
            bound: None,
            variable: Some(name.into()),
        }
    }

    /// A constant query vertex bound to a specific data vertex.
    pub fn constant(bound: VertexId, labels: Vec<VLabel>) -> Self {
        QueryVertex {
            labels: canonical(labels),
            bound: Some(bound),
            variable: None,
        }
    }

    /// An anonymous unconstrained vertex (blank label set, no ID).
    pub fn blank() -> Self {
        QueryVertex::default()
    }
}

fn canonical(mut labels: Vec<VLabel>) -> Vec<VLabel> {
    labels.sort_unstable();
    labels.dedup();
    labels
}

/// A directed query edge between two query vertices (by index).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct QueryEdge {
    /// Index of the source query vertex.
    pub from: usize,
    /// Index of the target query vertex.
    pub to: usize,
    /// The edge label, or `None` for a variable predicate.
    pub label: Option<ELabel>,
    /// The SPARQL variable bound to the predicate, if any.
    pub variable: Option<String>,
}

/// A query graph: vertices, edges and per-vertex incidence lists.
#[derive(Debug, Clone, Default)]
pub struct QueryGraph {
    vertices: Vec<QueryVertex>,
    edges: Vec<QueryEdge>,
    /// Per vertex: (edge index, direction as seen from this vertex).
    incidence: Vec<Vec<(usize, Direction)>>,
}

impl QueryGraph {
    /// Creates an empty query graph.
    pub fn new() -> Self {
        Self::default()
    }

    /// Adds a vertex and returns its index.
    pub fn add_vertex(&mut self, vertex: QueryVertex) -> usize {
        self.vertices.push(vertex);
        self.incidence.push(Vec::new());
        self.vertices.len() - 1
    }

    /// Adds an edge and returns its index.
    ///
    /// # Panics
    /// Panics if either endpoint index is out of range.
    pub fn add_edge(&mut self, edge: QueryEdge) -> usize {
        assert!(edge.from < self.vertices.len(), "edge.from out of range");
        assert!(edge.to < self.vertices.len(), "edge.to out of range");
        let idx = self.edges.len();
        self.incidence[edge.from].push((idx, Direction::Outgoing));
        if edge.to != edge.from {
            self.incidence[edge.to].push((idx, Direction::Incoming));
        }
        self.edges.push(edge);
        idx
    }

    /// Number of query vertices.
    pub fn vertex_count(&self) -> usize {
        self.vertices.len()
    }

    /// Number of query edges.
    pub fn edge_count(&self) -> usize {
        self.edges.len()
    }

    /// The vertex at `index`.
    pub fn vertex(&self, index: usize) -> &QueryVertex {
        &self.vertices[index]
    }

    /// All vertices.
    pub fn vertices(&self) -> &[QueryVertex] {
        &self.vertices
    }

    /// The edge at `index`.
    pub fn edge(&self, index: usize) -> &QueryEdge {
        &self.edges[index]
    }

    /// All edges.
    pub fn edges(&self) -> &[QueryEdge] {
        &self.edges
    }

    /// The incidence list of vertex `u`: `(edge index, direction from u)`.
    pub fn incident_edges(&self, u: usize) -> &[(usize, Direction)] {
        &self.incidence[u]
    }

    /// The degree of query vertex `u` (in + out).
    pub fn degree(&self, u: usize) -> usize {
        self.incidence[u].len()
    }

    /// Iterates `(neighbor vertex, edge index, direction from u)` for vertex `u`.
    pub fn neighbors(&self, u: usize) -> impl Iterator<Item = (usize, usize, Direction)> + '_ {
        self.incidence[u].iter().map(move |&(ei, dir)| {
            let e = &self.edges[ei];
            let other = match dir {
                Direction::Outgoing => e.to,
                Direction::Incoming => e.from,
            };
            (other, ei, dir)
        })
    }

    /// The distinct neighbor-type constraints of query vertex `u`:
    /// `(direction, edge label, neighbor's label set)` per incident edge.
    /// Used by the degree and NLF filters.
    pub fn neighbor_constraints(
        &self,
        u: usize,
    ) -> impl Iterator<Item = (Direction, Option<ELabel>, &[VLabel])> + '_ {
        self.neighbors(u).map(move |(other, ei, dir)| {
            (
                dir,
                self.edges[ei].label,
                self.vertices[other].labels.as_slice(),
            )
        })
    }

    /// Returns `true` if the query graph is connected (ignoring direction).
    /// Disconnected query graphs correspond to cartesian products, which the
    /// matcher rejects up front.
    pub fn is_connected(&self) -> bool {
        if self.vertices.is_empty() {
            return true;
        }
        let mut seen = vec![false; self.vertices.len()];
        let mut stack = vec![0usize];
        seen[0] = true;
        let mut count = 1usize;
        while let Some(u) = stack.pop() {
            for (other, _, _) in self.neighbors(u) {
                if !seen[other] {
                    seen[other] = true;
                    count += 1;
                    stack.push(other);
                }
            }
        }
        count == self.vertices.len()
    }

    /// The variable names of all vertices and edges, in first-appearance
    /// order (used to build result headers).
    pub fn variables(&self) -> Vec<String> {
        let mut vars = Vec::new();
        for v in &self.vertices {
            if let Some(name) = &v.variable {
                if !vars.contains(name) {
                    vars.push(name.clone());
                }
            }
        }
        for e in &self.edges {
            if let Some(name) = &e.variable {
                if !vars.contains(name) {
                    vars.push(name.clone());
                }
            }
        }
        vars
    }

    /// Returns the index of the vertex bound to `var`, if any.
    pub fn vertex_of_variable(&self, var: &str) -> Option<usize> {
        self.vertices
            .iter()
            .position(|v| v.variable.as_deref() == Some(var))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Builds the query graph of paper Figure 8 (type-aware transformed):
    /// u0 {B} --a--> u1 {C}; u0 --b--> u2 {D}; u2 --c--> u1.
    fn figure8_query() -> QueryGraph {
        let mut q = QueryGraph::new();
        let u0 = q.add_vertex(QueryVertex::variable("X", vec![VLabel(1)]));
        let u1 = q.add_vertex(QueryVertex::variable("Y", vec![VLabel(2)]));
        let u2 = q.add_vertex(QueryVertex::variable("Z", vec![VLabel(3)]));
        q.add_edge(QueryEdge {
            from: u0,
            to: u1,
            label: Some(ELabel(0)),
            variable: None,
        });
        q.add_edge(QueryEdge {
            from: u0,
            to: u2,
            label: Some(ELabel(1)),
            variable: None,
        });
        q.add_edge(QueryEdge {
            from: u2,
            to: u1,
            label: Some(ELabel(2)),
            variable: None,
        });
        q
    }

    #[test]
    fn construction_counts() {
        let q = figure8_query();
        assert_eq!(q.vertex_count(), 3);
        assert_eq!(q.edge_count(), 3);
        assert_eq!(q.degree(0), 2);
        assert_eq!(q.degree(1), 2);
        assert_eq!(q.degree(2), 2);
    }

    #[test]
    fn neighbors_and_directions() {
        let q = figure8_query();
        let n0: Vec<(usize, usize, Direction)> = q.neighbors(0).collect();
        assert_eq!(n0.len(), 2);
        assert!(n0.contains(&(1, 0, Direction::Outgoing)));
        assert!(n0.contains(&(2, 1, Direction::Outgoing)));
        let n1: Vec<(usize, usize, Direction)> = q.neighbors(1).collect();
        assert!(n1.contains(&(0, 0, Direction::Incoming)));
        assert!(n1.contains(&(2, 2, Direction::Incoming)));
    }

    #[test]
    fn neighbor_constraints_expose_labels() {
        let q = figure8_query();
        let cons: Vec<_> = q.neighbor_constraints(0).collect();
        assert_eq!(cons.len(), 2);
        assert!(cons.iter().any(|(d, el, ls)| *d == Direction::Outgoing
            && *el == Some(ELabel(0))
            && *ls == [VLabel(2)]));
    }

    #[test]
    fn connectivity() {
        let q = figure8_query();
        assert!(q.is_connected());
        let mut disconnected = QueryGraph::new();
        disconnected.add_vertex(QueryVertex::blank());
        disconnected.add_vertex(QueryVertex::blank());
        assert!(!disconnected.is_connected());
        let empty = QueryGraph::new();
        assert!(empty.is_connected());
    }

    #[test]
    fn variables_in_order_without_duplicates() {
        let mut q = figure8_query();
        q.add_edge(QueryEdge {
            from: 0,
            to: 1,
            label: None,
            variable: Some("P".into()),
        });
        assert_eq!(q.variables(), vec!["X", "Y", "Z", "P"]);
        assert_eq!(q.vertex_of_variable("Z"), Some(2));
        assert_eq!(q.vertex_of_variable("W"), None);
    }

    #[test]
    fn vertex_constructors_canonicalize_labels() {
        let v = QueryVertex::variable("x", vec![VLabel(2), VLabel(0), VLabel(2)]);
        assert_eq!(v.labels, vec![VLabel(0), VLabel(2)]);
        let c = QueryVertex::constant(VertexId(3), vec![]);
        assert_eq!(c.bound, Some(VertexId(3)));
        assert!(c.variable.is_none());
        let b = QueryVertex::blank();
        assert!(b.labels.is_empty() && b.bound.is_none() && b.variable.is_none());
    }

    #[test]
    fn self_loop_incidence_recorded_once() {
        let mut q = QueryGraph::new();
        let u = q.add_vertex(QueryVertex::blank());
        q.add_edge(QueryEdge {
            from: u,
            to: u,
            label: Some(ELabel(0)),
            variable: None,
        });
        assert_eq!(q.degree(u), 1);
        assert!(q.is_connected());
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn out_of_range_edge_panics() {
        let mut q = QueryGraph::new();
        q.add_vertex(QueryVertex::blank());
        q.add_edge(QueryEdge {
            from: 0,
            to: 5,
            label: None,
            variable: None,
        });
    }
}
