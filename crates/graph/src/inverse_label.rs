//! The inverse vertex label list (paper Figure 9a).
//!
//! Maps a vertex label to the sorted list of data vertices carrying it. The
//! matcher uses it to compute `freq(g, L(u))` when ranking starting query
//! vertices and to enumerate the starting data vertices of candidate regions;
//! with a multi-label query vertex the per-label lists are intersected
//! (Section 4.2, `ChooseStartQueryVertex`).

use crate::ids::{VLabel, VertexId};
use crate::labeled_graph::LabeledGraph;
use crate::ops;
use turbohom_storage::{FlatCsr, FlatVec, SectionCursor, SnapshotError, SnapshotWriter};

/// Snapshot section tags (component 0x05).
const TAG_INV_OFFSETS: u64 = 0x0501;
const TAG_INV_VERTICES: u64 = 0x0502;
const TAG_INV_UNLABELED: u64 = 0x0503;

/// Vertex label → sorted vertex list index.
#[derive(Debug, Clone, Default)]
pub struct InverseLabelIndex {
    lists: FlatCsr<VertexId>,
    /// Vertices with an empty label set (useful for diagnostics).
    unlabeled: FlatVec<VertexId>,
}

impl InverseLabelIndex {
    /// Builds the index from a graph.
    pub fn build(graph: &LabeledGraph) -> Self {
        let mut lists: Vec<Vec<VertexId>> = vec![Vec::new(); graph.vertex_label_count()];
        let mut unlabeled = Vec::new();
        for v in graph.vertices() {
            let ls = graph.labels(v);
            if ls.is_empty() {
                unlabeled.push(v);
            } else {
                for &l in ls {
                    lists[l.index()].push(v);
                }
            }
        }
        // Vertices are visited in increasing id order, so the lists are
        // already sorted; assert in debug builds.
        debug_assert!(lists.iter().all(|l| ops::is_sorted_set(l)));
        InverseLabelIndex {
            lists: FlatCsr::from_rows(&lists),
            unlabeled: unlabeled.into(),
        }
    }

    /// The sorted vertices carrying `label` (empty slice if the label is
    /// out of range or unused).
    pub fn vertices_with_label(&self, label: VLabel) -> &[VertexId] {
        self.lists.row(label.index())
    }

    /// `freq(g, {label})` — the number of vertices carrying `label`.
    pub fn frequency(&self, label: VLabel) -> usize {
        self.vertices_with_label(label).len()
    }

    /// The vertices carrying **all** labels in `labels` (intersection of the
    /// per-label lists). With an empty label set this returns `None`,
    /// because "no label constraint" means *all* vertices, which callers
    /// handle through the predicate index instead.
    pub fn vertices_with_all_labels(&self, labels: &[VLabel]) -> Option<Vec<VertexId>> {
        match labels.len() {
            0 => None,
            1 => Some(self.vertices_with_label(labels[0]).to_vec()),
            _ => {
                let slices: Vec<&[VertexId]> = labels
                    .iter()
                    .map(|&l| self.vertices_with_label(l))
                    .collect();
                Some(ops::intersect_k(&slices))
            }
        }
    }

    /// `freq(g, L)` for a label set (size of the intersection). Returns
    /// `None` for an empty label set (unconstrained).
    pub fn frequency_of_set(&self, labels: &[VLabel]) -> Option<usize> {
        self.vertices_with_all_labels(labels).map(|v| v.len())
    }

    /// Vertices with an empty label set.
    pub fn unlabeled_vertices(&self) -> &[VertexId] {
        &self.unlabeled
    }

    /// Number of distinct labels indexed.
    pub fn label_count(&self) -> usize {
        self.lists.num_rows()
    }

    /// Serializes the index as snapshot sections.
    pub fn write_sections(&self, w: &mut SnapshotWriter) {
        w.section(TAG_INV_OFFSETS, self.lists.offsets());
        w.section(TAG_INV_VERTICES, self.lists.data());
        w.section(TAG_INV_UNLABELED, &self.unlabeled);
    }

    /// Reconstructs the index reading its arrays in place from a snapshot.
    pub fn read_sections(cur: &mut SectionCursor<'_>) -> Result<Self, SnapshotError> {
        let lists = FlatCsr::from_parts(
            cur.next_section(TAG_INV_OFFSETS)?,
            cur.next_section(TAG_INV_VERTICES)?,
        )?;
        Ok(InverseLabelIndex {
            lists,
            unlabeled: cur.next_section(TAG_INV_UNLABELED)?,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::builder::LabeledGraphBuilder;

    fn sample() -> (LabeledGraph, InverseLabelIndex) {
        let mut b = LabeledGraphBuilder::new();
        // v0 {A}, v1 {A,B}, v2 {B}, v3 {}, v4 {A,B,C}
        b.add_vertex(vec![VLabel(0)]);
        b.add_vertex(vec![VLabel(0), VLabel(1)]);
        b.add_vertex(vec![VLabel(1)]);
        b.add_vertex(vec![]);
        b.add_vertex(vec![VLabel(0), VLabel(1), VLabel(2)]);
        let g = b.build();
        let idx = InverseLabelIndex::build(&g);
        (g, idx)
    }

    #[test]
    fn per_label_lists_are_sorted_and_complete() {
        let (_, idx) = sample();
        assert_eq!(
            idx.vertices_with_label(VLabel(0)),
            &[VertexId(0), VertexId(1), VertexId(4)]
        );
        assert_eq!(
            idx.vertices_with_label(VLabel(1)),
            &[VertexId(1), VertexId(2), VertexId(4)]
        );
        assert_eq!(idx.vertices_with_label(VLabel(2)), &[VertexId(4)]);
        assert_eq!(idx.frequency(VLabel(0)), 3);
    }

    #[test]
    fn out_of_range_label_is_empty() {
        let (_, idx) = sample();
        assert!(idx.vertices_with_label(VLabel(99)).is_empty());
        assert_eq!(idx.frequency(VLabel(99)), 0);
    }

    #[test]
    fn multi_label_intersection() {
        let (_, idx) = sample();
        assert_eq!(
            idx.vertices_with_all_labels(&[VLabel(0), VLabel(1)]),
            Some(vec![VertexId(1), VertexId(4)])
        );
        assert_eq!(
            idx.vertices_with_all_labels(&[VLabel(0), VLabel(1), VLabel(2)]),
            Some(vec![VertexId(4)])
        );
        assert_eq!(idx.frequency_of_set(&[VLabel(0), VLabel(1)]), Some(2));
    }

    #[test]
    fn empty_label_set_is_unconstrained() {
        let (_, idx) = sample();
        assert_eq!(idx.vertices_with_all_labels(&[]), None);
        assert_eq!(idx.frequency_of_set(&[]), None);
    }

    #[test]
    fn unlabeled_vertices_tracked() {
        let (_, idx) = sample();
        assert_eq!(idx.unlabeled_vertices(), &[VertexId(3)]);
        assert_eq!(idx.label_count(), 3);
    }
}
