//! Labeled-graph substrate for the TurboHOM++ reproduction.
//!
//! This crate implements the in-memory data structures of paper Section 4.2:
//!
//! * [`LabeledGraph`] — an immutable CSR-style directed graph whose vertices
//!   carry *label sets* and whose edges carry a single label. Adjacency is
//!   stored **grouped by neighbor type** — the pair *(edge label, neighbor
//!   vertex label)* — in both directions, which is exactly the layout that
//!   makes `ExploreCandidateRegion` and the `+INT` intersection-based
//!   `IsJoinable` test cheap.
//! * [`InverseLabelIndex`] — the "inverse vertex label list": vertex label →
//!   sorted list of vertices carrying it.
//! * [`PredicateIndex`] — edge label → (sorted subject list, sorted object
//!   list), used when a query vertex has neither label nor bound ID
//!   (Section 4.2, `ChooseStartQueryVertex`).
//! * [`QueryGraph`] — the query-side representation with the *two-attribute
//!   vertex model*: a query vertex has an optional bound data-vertex ID and a
//!   label set; a query edge has an optional edge label (a `None` label is a
//!   variable predicate of the e-graph homomorphism).
//! * [`ops`] — sorted-set kernels (merge/galloping intersection, union,
//!   k-way intersection) shared by the matcher and the baselines.

pub mod builder;
pub mod ids;
pub mod inverse_label;
pub mod labeled_graph;
pub mod ops;
pub mod predicate_index;
pub mod query_graph;

pub use builder::LabeledGraphBuilder;
pub use ids::{Direction, ELabel, VLabel, VertexId};
pub use inverse_label::InverseLabelIndex;
pub use labeled_graph::{GraphStats, LabeledGraph, NeighborType};
pub use predicate_index::PredicateIndex;
pub use query_graph::{QueryEdge, QueryGraph, QueryVertex};
