//! The immutable CSR labeled data graph (paper Section 4.2).
//!
//! The two central access paths the matcher needs are:
//!
//! 1. `adj(v, (el, vl))` — the adjacent vertices of `v` reachable over edge
//!    label `el` whose label set contains `vl` (the "neighbor type" groups of
//!    Figure 9b in the paper), and
//! 2. `adj(v, el)` — the adjacent vertices over `el` regardless of their
//!    label (needed when the query vertex has a blank label, and by the
//!    baselines).
//!
//! Both are contiguous slices in this representation: adjacency is laid out
//! per vertex, grouped first by edge label and inside each edge-label group
//! by neighbor vertex label. A neighbor carrying several labels appears once
//! per label in the *typed* groups but only once in the per-edge-label slice.

use crate::ids::{Direction, ELabel, VLabel, VertexId};
use turbohom_storage::{FlatVec, Pod, SectionCursor, SnapshotError, SnapshotWriter};

/// Snapshot section tags (component 0x03). The two adjacency directions use
/// distinct tag bases so a mis-ordered reader fails loudly.
const TAG_GRAPH_META: u64 = 0x0301;
const TAG_GRAPH_LABEL_OFFSETS: u64 = 0x0302;
const TAG_GRAPH_LABELS: u64 = 0x0303;
const TAG_GRAPH_DEGREE_ORDER: u64 = 0x0304;
const TAG_DIR_OUTGOING: u64 = 0x0310;
const TAG_DIR_INCOMING: u64 = 0x0320;

/// A neighbor type: the pair (edge label, neighbor vertex label).
///
/// `vertex_label == None` encodes the paper's `_` group — the neighbor has an
/// empty label set.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct NeighborType {
    /// The label of the connecting edge.
    pub edge_label: ELabel,
    /// The label of the neighbor, or `None` if the neighbor carries no label.
    pub vertex_label: Option<VLabel>,
}

/// Per-edge-label adjacency group of one vertex.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
#[repr(C)]
pub(crate) struct ELabelGroup {
    pub(crate) elabel: ELabel,
    /// Range into `AdjacencyDirection::targets` (deduplicated neighbors).
    pub(crate) target_start: u32,
    pub(crate) target_end: u32,
    /// Range into `AdjacencyDirection::type_groups`.
    pub(crate) type_start: u32,
    pub(crate) type_end: u32,
}

// Safety: repr(C) of five u32 fields — no padding, no niches.
unsafe impl Pod for ELabelGroup {}

/// Per-(edge label, neighbor vertex label) adjacency group of one vertex.
///
/// The neighbor label is stored as a raw key — `0` for the paper's `_` group
/// (no label) and `l + 1` for `VLabel(l)` — so the struct is Pod and the key
/// order matches the `Option<VLabel>` order (`None < Some`) the binary
/// searches rely on.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
#[repr(C)]
pub(crate) struct TypeGroup {
    pub(crate) vlabel_key: u32,
    /// Range into `AdjacencyDirection::typed_targets`.
    pub(crate) start: u32,
    pub(crate) end: u32,
}

// Safety: repr(C) of three u32 fields — no padding, no niches.
unsafe impl Pod for TypeGroup {}

impl TypeGroup {
    /// Encodes an optional neighbor label as the stored key.
    #[inline]
    pub(crate) fn key_of(vl: Option<VLabel>) -> u32 {
        match vl {
            None => 0,
            Some(l) => l.0 + 1,
        }
    }

    /// Decodes the stored key back into an optional neighbor label.
    #[inline]
    pub(crate) fn vlabel(&self) -> Option<VLabel> {
        if self.vlabel_key == 0 {
            None
        } else {
            Some(VLabel(self.vlabel_key - 1))
        }
    }
}

/// Adjacency structure of one direction (outgoing or incoming).
#[derive(Debug, Clone, Default)]
pub(crate) struct AdjacencyDirection {
    /// `vertex_offsets[v] .. vertex_offsets[v+1]` is the range of
    /// `elabel_groups` belonging to vertex `v`.
    pub(crate) vertex_offsets: FlatVec<u32>,
    pub(crate) elabel_groups: FlatVec<ELabelGroup>,
    pub(crate) type_groups: FlatVec<TypeGroup>,
    /// Neighbors per (vertex, edge label), sorted, duplicate free.
    pub(crate) targets: FlatVec<VertexId>,
    /// Neighbors per (vertex, edge label, neighbor label), sorted. A neighbor
    /// with k labels appears in k type groups.
    pub(crate) typed_targets: FlatVec<VertexId>,
    /// Total number of edges incident in this direction per vertex
    /// (counting parallel edges with different labels separately).
    pub(crate) degrees: FlatVec<u32>,
}

impl AdjacencyDirection {
    fn elabel_groups_of(&self, v: VertexId) -> &[ELabelGroup] {
        let start = self.vertex_offsets[v.index()] as usize;
        let end = self.vertex_offsets[v.index() + 1] as usize;
        &self.elabel_groups[start..end]
    }

    fn find_elabel_group(&self, v: VertexId, el: ELabel) -> Option<&ELabelGroup> {
        let groups = self.elabel_groups_of(v);
        groups
            .binary_search_by_key(&el, |g| g.elabel)
            .ok()
            .map(|i| &groups[i])
    }

    /// Writes the six arrays of this direction under `base` tags.
    fn write_sections(&self, w: &mut SnapshotWriter, base: u64) {
        w.section(base, &self.vertex_offsets);
        w.section(base + 1, &self.elabel_groups);
        w.section(base + 2, &self.type_groups);
        w.section(base + 3, &self.targets);
        w.section(base + 4, &self.typed_targets);
        w.section(base + 5, &self.degrees);
    }

    /// Reads one direction back and validates every stored range so the
    /// accessors cannot index out of bounds on a corrupt file.
    fn read_sections(
        cur: &mut SectionCursor<'_>,
        base: u64,
        num_vertices: usize,
    ) -> Result<Self, SnapshotError> {
        let dir = AdjacencyDirection {
            vertex_offsets: cur.next_section(base)?,
            elabel_groups: cur.next_section(base + 1)?,
            type_groups: cur.next_section(base + 2)?,
            targets: cur.next_section(base + 3)?,
            typed_targets: cur.next_section(base + 4)?,
            degrees: cur.next_section(base + 5)?,
        };
        let malformed = |what: &str| SnapshotError::Malformed(format!("adjacency: {what}"));
        if dir.vertex_offsets.len() != num_vertices + 1 || dir.degrees.len() != num_vertices {
            return Err(malformed("per-vertex array length mismatch"));
        }
        let num_groups = dir.elabel_groups.len() as u32;
        if dir.vertex_offsets.first() != Some(&0)
            || dir.vertex_offsets.windows(2).any(|w| w[0] > w[1])
            || dir.vertex_offsets.last().copied().unwrap_or(0) != num_groups
        {
            return Err(malformed("vertex offsets are not monotone"));
        }
        let num_targets = dir.targets.len() as u32;
        let num_type_groups = dir.type_groups.len() as u32;
        for g in dir.elabel_groups.iter() {
            if g.target_start > g.target_end
                || g.target_end > num_targets
                || g.type_start > g.type_end
                || g.type_end > num_type_groups
            {
                return Err(malformed("edge-label group range out of bounds"));
            }
        }
        let num_typed = dir.typed_targets.len() as u32;
        for tg in dir.type_groups.iter() {
            if tg.start > tg.end || tg.end > num_typed {
                return Err(malformed("type group range out of bounds"));
            }
        }
        let num_v = num_vertices as u32;
        if dir
            .targets
            .iter()
            .chain(dir.typed_targets.iter())
            .any(|t| t.0 >= num_v)
        {
            return Err(malformed("neighbor id out of range"));
        }
        Ok(dir)
    }
}

/// Summary statistics of a labeled graph, used by the Table 1 experiment.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct GraphStats {
    /// Number of vertices.
    pub vertices: usize,
    /// Number of edges.
    pub edges: usize,
    /// Number of distinct vertex labels.
    pub vertex_labels: usize,
    /// Number of distinct edge labels.
    pub edge_labels: usize,
}

/// The immutable, CSR-encoded labeled directed graph.
///
/// Construct one through [`LabeledGraphBuilder`](crate::builder::LabeledGraphBuilder).
#[derive(Debug, Clone, Default)]
pub struct LabeledGraph {
    pub(crate) num_vertices: usize,
    pub(crate) num_edges: usize,
    pub(crate) num_vlabels: usize,
    pub(crate) num_elabels: usize,
    /// CSR of vertex label sets (sorted per vertex).
    pub(crate) label_offsets: FlatVec<u32>,
    pub(crate) labels: FlatVec<VLabel>,
    pub(crate) outgoing: AdjacencyDirection,
    pub(crate) incoming: AdjacencyDirection,
    /// All vertices sorted by descending total degree (ties by ascending id).
    pub(crate) degree_order: FlatVec<VertexId>,
}

impl LabeledGraph {
    /// Number of vertices.
    pub fn vertex_count(&self) -> usize {
        self.num_vertices
    }

    /// Number of edges.
    pub fn edge_count(&self) -> usize {
        self.num_edges
    }

    /// Number of distinct vertex labels.
    pub fn vertex_label_count(&self) -> usize {
        self.num_vlabels
    }

    /// Number of distinct edge labels.
    pub fn edge_label_count(&self) -> usize {
        self.num_elabels
    }

    /// Summary statistics (Table 1 in the paper).
    pub fn stats(&self) -> GraphStats {
        GraphStats {
            vertices: self.num_vertices,
            edges: self.num_edges,
            vertex_labels: self.num_vlabels,
            edge_labels: self.num_elabels,
        }
    }

    /// Iterates over all vertex ids.
    pub fn vertices(&self) -> impl Iterator<Item = VertexId> {
        (0..self.num_vertices as u32).map(VertexId)
    }

    /// The (sorted) label set of vertex `v`.
    pub fn labels(&self, v: VertexId) -> &[VLabel] {
        let start = self.label_offsets[v.index()] as usize;
        let end = self.label_offsets[v.index() + 1] as usize;
        &self.labels[start..end]
    }

    /// Returns `true` if vertex `v` carries label `l`.
    pub fn has_label(&self, v: VertexId, l: VLabel) -> bool {
        self.labels(v).binary_search(&l).is_ok()
    }

    /// Returns `true` if the label set of `v` is a superset of `required`
    /// (the `L(u) ⊆ L'(M(u))` condition of Definition 1/2).
    pub fn has_all_labels(&self, v: VertexId, required: &[VLabel]) -> bool {
        required.iter().all(|&l| self.has_label(v, l))
    }

    fn dir(&self, direction: Direction) -> &AdjacencyDirection {
        match direction {
            Direction::Outgoing => &self.outgoing,
            Direction::Incoming => &self.incoming,
        }
    }

    /// The number of edges incident to `v` in `direction` (parallel edges
    /// with different labels counted separately).
    pub fn degree(&self, v: VertexId, direction: Direction) -> usize {
        self.dir(direction).degrees[v.index()] as usize
    }

    /// Total degree (in + out) of `v`.
    pub fn total_degree(&self, v: VertexId) -> usize {
        self.degree(v, Direction::Outgoing) + self.degree(v, Direction::Incoming)
    }

    /// All vertices ordered by descending total degree (ties broken by
    /// ascending id). Precomputed at build time; the morsel scheduler uses it
    /// to rank candidate-region start vertices so heavy regions are claimed
    /// first.
    pub fn vertices_by_degree_desc(&self) -> &[VertexId] {
        &self.degree_order
    }

    /// Number of distinct neighbor types (edge label, neighbor label) of `v`
    /// in `direction` — the quantity the homomorphism-adjusted degree filter
    /// compares against (Section 2.2, "Modifying TurboISO").
    pub fn neighbor_type_count(&self, v: VertexId, direction: Direction) -> usize {
        let d = self.dir(direction);
        let groups = d.elabel_groups_of(v);
        groups
            .iter()
            .map(|g| (g.type_end - g.type_start) as usize)
            .sum()
    }

    /// Iterates the neighbor types of `v` in `direction`.
    pub fn neighbor_types(
        &self,
        v: VertexId,
        direction: Direction,
    ) -> impl Iterator<Item = NeighborType> + '_ {
        let d = self.dir(direction);
        d.elabel_groups_of(v).iter().flat_map(move |g| {
            d.type_groups[g.type_start as usize..g.type_end as usize]
                .iter()
                .map(move |tg| NeighborType {
                    edge_label: g.elabel,
                    vertex_label: tg.vlabel(),
                })
        })
    }

    /// The neighbors of `v` over edge label `el` in `direction`
    /// (sorted, duplicate free). This is `adj(v, el)`.
    pub fn neighbors(&self, v: VertexId, direction: Direction, el: ELabel) -> &[VertexId] {
        let d = self.dir(direction);
        match d.find_elabel_group(v, el) {
            Some(g) => &d.targets[g.target_start as usize..g.target_end as usize],
            None => &[],
        }
    }

    /// The neighbors of `v` over edge label `el` whose label set contains
    /// `vl`, in `direction` (sorted). This is the paper's
    /// `adj(v, (el, vl))` access path.
    pub fn neighbors_typed(
        &self,
        v: VertexId,
        direction: Direction,
        el: ELabel,
        vl: VLabel,
    ) -> &[VertexId] {
        let d = self.dir(direction);
        match d.find_elabel_group(v, el) {
            Some(g) => {
                let tgs = &d.type_groups[g.type_start as usize..g.type_end as usize];
                match tgs.binary_search_by_key(&TypeGroup::key_of(Some(vl)), |tg| tg.vlabel_key) {
                    Ok(i) => {
                        let tg = &tgs[i];
                        &d.typed_targets[tg.start as usize..tg.end as usize]
                    }
                    Err(_) => &[],
                }
            }
            None => &[],
        }
    }

    /// Neighbors of `v` over edge label `el` that carry **no** label (the
    /// `(el, _)` group of Figure 9).
    pub fn neighbors_unlabeled(
        &self,
        v: VertexId,
        direction: Direction,
        el: ELabel,
    ) -> &[VertexId] {
        let d = self.dir(direction);
        match d.find_elabel_group(v, el) {
            Some(g) => {
                let tgs = &d.type_groups[g.type_start as usize..g.type_end as usize];
                match tgs.binary_search_by_key(&TypeGroup::key_of(None), |tg| tg.vlabel_key) {
                    Ok(i) => {
                        let tg = &tgs[i];
                        &d.typed_targets[tg.start as usize..tg.end as usize]
                    }
                    Err(_) => &[],
                }
            }
            None => &[],
        }
    }

    /// All neighbors of `v` in `direction` regardless of edge label
    /// (sorted, duplicate free). Allocates, since it unions the per-label
    /// groups.
    pub fn all_neighbors(&self, v: VertexId, direction: Direction) -> Vec<VertexId> {
        let d = self.dir(direction);
        let slices: Vec<&[VertexId]> = d
            .elabel_groups_of(v)
            .iter()
            .map(|g| &d.targets[g.target_start as usize..g.target_end as usize])
            .collect();
        crate::ops::union_k(&slices)
    }

    /// Neighbors of `v` in `direction` with vertex label `vl`, over **any**
    /// edge label (used when the query edge label is blank but the neighbor
    /// label is known). Allocates.
    pub fn neighbors_with_label_any_edge(
        &self,
        v: VertexId,
        direction: Direction,
        vl: VLabel,
    ) -> Vec<VertexId> {
        let d = self.dir(direction);
        let mut slices: Vec<&[VertexId]> = Vec::new();
        for g in d.elabel_groups_of(v) {
            let tgs = &d.type_groups[g.type_start as usize..g.type_end as usize];
            if let Ok(i) =
                tgs.binary_search_by_key(&TypeGroup::key_of(Some(vl)), |tg| tg.vlabel_key)
            {
                let tg = &tgs[i];
                slices.push(&d.typed_targets[tg.start as usize..tg.end as usize]);
            }
        }
        crate::ops::union_k(&slices)
    }

    /// Edge labels present on edges incident to `v` in `direction`.
    pub fn incident_edge_labels(
        &self,
        v: VertexId,
        direction: Direction,
    ) -> impl Iterator<Item = ELabel> + '_ {
        self.dir(direction)
            .elabel_groups_of(v)
            .iter()
            .map(|g| g.elabel)
    }

    /// Returns `true` if the edge `from --el--> to` exists.
    pub fn has_edge(&self, from: VertexId, to: VertexId, el: ELabel) -> bool {
        crate::ops::contains_sorted(self.neighbors(from, Direction::Outgoing, el), to)
    }

    /// Returns all edge labels on edges `from --?--> to` (needed for variable
    /// predicates: the `Me` edge-label mapping of Definition 2).
    pub fn edge_labels_between(&self, from: VertexId, to: VertexId) -> Vec<ELabel> {
        let d = &self.outgoing;
        d.elabel_groups_of(from)
            .iter()
            .filter(|g| {
                crate::ops::contains_sorted(
                    &d.targets[g.target_start as usize..g.target_end as usize],
                    to,
                )
            })
            .map(|g| g.elabel)
            .collect()
    }

    /// Serializes the graph as snapshot sections: a meta array, the vertex
    /// label CSR, both adjacency directions and the degree order.
    pub fn write_sections(&self, w: &mut SnapshotWriter) {
        let meta: [u64; 4] = [
            self.num_vertices as u64,
            self.num_edges as u64,
            self.num_vlabels as u64,
            self.num_elabels as u64,
        ];
        w.section(TAG_GRAPH_META, &meta);
        w.section(TAG_GRAPH_LABEL_OFFSETS, &self.label_offsets);
        w.section(TAG_GRAPH_LABELS, &self.labels);
        self.outgoing.write_sections(w, TAG_DIR_OUTGOING);
        self.incoming.write_sections(w, TAG_DIR_INCOMING);
        w.section(TAG_GRAPH_DEGREE_ORDER, &self.degree_order);
    }

    /// Reconstructs a graph reading all arrays in place from a snapshot,
    /// validating the CSR invariants so accessors cannot panic.
    pub fn read_sections(cur: &mut SectionCursor<'_>) -> Result<Self, SnapshotError> {
        let meta: FlatVec<u64> = cur.next_section(TAG_GRAPH_META)?;
        if meta.len() != 4 {
            return Err(SnapshotError::Malformed("graph meta section length".into()));
        }
        let num_vertices = meta[0] as usize;
        let label_offsets: FlatVec<u32> = cur.next_section(TAG_GRAPH_LABEL_OFFSETS)?;
        let labels: FlatVec<VLabel> = cur.next_section(TAG_GRAPH_LABELS)?;
        if label_offsets.len() != num_vertices + 1
            || label_offsets.first() != Some(&0)
            || label_offsets.windows(2).any(|w| w[0] > w[1])
            || label_offsets.last().copied().unwrap_or(0) as usize != labels.len()
        {
            return Err(SnapshotError::Malformed(
                "graph label offsets are not monotone".into(),
            ));
        }
        let outgoing = AdjacencyDirection::read_sections(cur, TAG_DIR_OUTGOING, num_vertices)?;
        let incoming = AdjacencyDirection::read_sections(cur, TAG_DIR_INCOMING, num_vertices)?;
        let degree_order: FlatVec<VertexId> = cur.next_section(TAG_GRAPH_DEGREE_ORDER)?;
        if degree_order.len() != num_vertices
            || degree_order.iter().any(|v| v.index() >= num_vertices)
        {
            return Err(SnapshotError::Malformed(
                "graph degree order is not a vertex permutation".into(),
            ));
        }
        Ok(LabeledGraph {
            num_vertices,
            num_edges: meta[1] as usize,
            num_vlabels: meta[2] as usize,
            num_elabels: meta[3] as usize,
            label_offsets,
            labels,
            outgoing,
            incoming,
            degree_order,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::builder::LabeledGraphBuilder;

    /// Builds the data graph of paper Figure 7d:
    /// v0 {A,B}, v1 {C}, v2 {D}, v3 {}, v4 {};
    /// edges: v0-a->v1, v0-b->v2, v0-d->v3, v0-e->v4, v2-c->v1.
    fn figure7_graph() -> LabeledGraph {
        let mut b = LabeledGraphBuilder::new();
        let v0 = b.add_vertex(vec![VLabel(0), VLabel(1)]);
        let v1 = b.add_vertex(vec![VLabel(2)]);
        let v2 = b.add_vertex(vec![VLabel(3)]);
        let v3 = b.add_vertex(vec![]);
        let v4 = b.add_vertex(vec![]);
        b.add_edge(v0, v1, ELabel(0)); // a
        b.add_edge(v0, v2, ELabel(1)); // b
        b.add_edge(v0, v3, ELabel(3)); // d
        b.add_edge(v0, v4, ELabel(4)); // e
        b.add_edge(v2, v1, ELabel(2)); // c
        b.build()
    }

    #[test]
    fn stats_match_figure7() {
        let g = figure7_graph();
        assert_eq!(g.vertex_count(), 5);
        assert_eq!(g.edge_count(), 5);
        assert_eq!(g.vertex_label_count(), 4);
        assert_eq!(g.edge_label_count(), 5);
        assert_eq!(
            g.stats(),
            GraphStats {
                vertices: 5,
                edges: 5,
                vertex_labels: 4,
                edge_labels: 5
            }
        );
    }

    #[test]
    fn label_access() {
        let g = figure7_graph();
        assert_eq!(g.labels(VertexId(0)), &[VLabel(0), VLabel(1)]);
        assert!(g.has_label(VertexId(0), VLabel(1)));
        assert!(!g.has_label(VertexId(0), VLabel(2)));
        assert!(g.has_all_labels(VertexId(0), &[VLabel(0), VLabel(1)]));
        assert!(!g.has_all_labels(VertexId(0), &[VLabel(0), VLabel(3)]));
        assert!(g.has_all_labels(VertexId(3), &[]));
        assert!(g.labels(VertexId(4)).is_empty());
    }

    #[test]
    fn outgoing_neighbors_by_edge_label() {
        let g = figure7_graph();
        assert_eq!(
            g.neighbors(VertexId(0), Direction::Outgoing, ELabel(0)),
            &[VertexId(1)]
        );
        assert_eq!(
            g.neighbors(VertexId(2), Direction::Outgoing, ELabel(2)),
            &[VertexId(1)]
        );
        assert!(g
            .neighbors(VertexId(1), Direction::Outgoing, ELabel(0))
            .is_empty());
    }

    #[test]
    fn incoming_neighbors_by_edge_label() {
        let g = figure7_graph();
        assert_eq!(
            g.neighbors(VertexId(1), Direction::Incoming, ELabel(0)),
            &[VertexId(0)]
        );
        assert_eq!(
            g.neighbors(VertexId(1), Direction::Incoming, ELabel(2)),
            &[VertexId(2)]
        );
    }

    #[test]
    fn typed_neighbor_groups_match_figure9() {
        let g = figure7_graph();
        // adj(v0, (a, C)) = {v1}
        assert_eq!(
            g.neighbors_typed(VertexId(0), Direction::Outgoing, ELabel(0), VLabel(2)),
            &[VertexId(1)]
        );
        // adj(v0, (b, D)) = {v2}
        assert_eq!(
            g.neighbors_typed(VertexId(0), Direction::Outgoing, ELabel(1), VLabel(3)),
            &[VertexId(2)]
        );
        // adj(v0, (d, _)) = {v3} — unlabeled neighbor group.
        assert_eq!(
            g.neighbors_unlabeled(VertexId(0), Direction::Outgoing, ELabel(3)),
            &[VertexId(3)]
        );
        // No such group: adj(v0, (a, D)) = ∅.
        assert!(g
            .neighbors_typed(VertexId(0), Direction::Outgoing, ELabel(0), VLabel(3))
            .is_empty());
    }

    #[test]
    fn neighbor_types_enumeration() {
        let g = figure7_graph();
        let types: Vec<NeighborType> = g.neighbor_types(VertexId(0), Direction::Outgoing).collect();
        assert_eq!(types.len(), 4);
        assert!(types.contains(&NeighborType {
            edge_label: ELabel(0),
            vertex_label: Some(VLabel(2))
        }));
        assert!(types.contains(&NeighborType {
            edge_label: ELabel(3),
            vertex_label: None
        }));
        assert_eq!(g.neighbor_type_count(VertexId(0), Direction::Outgoing), 4);
    }

    #[test]
    fn degrees() {
        let g = figure7_graph();
        assert_eq!(g.degree(VertexId(0), Direction::Outgoing), 4);
        assert_eq!(g.degree(VertexId(0), Direction::Incoming), 0);
        assert_eq!(g.degree(VertexId(1), Direction::Incoming), 2);
        assert_eq!(g.total_degree(VertexId(2)), 2);
    }

    #[test]
    fn multi_label_neighbor_appears_in_each_type_group_once_in_flat_list() {
        // w has two labels; u -p-> w must appear in both (p, L0) and (p, L1)
        // type groups but only once in adj(u, p).
        let mut b = LabeledGraphBuilder::new();
        let u = b.add_vertex(vec![]);
        let w = b.add_vertex(vec![VLabel(0), VLabel(1)]);
        b.add_edge(u, w, ELabel(0));
        let g = b.build();
        assert_eq!(g.neighbors(u, Direction::Outgoing, ELabel(0)), &[w]);
        assert_eq!(
            g.neighbors_typed(u, Direction::Outgoing, ELabel(0), VLabel(0)),
            &[w]
        );
        assert_eq!(
            g.neighbors_typed(u, Direction::Outgoing, ELabel(0), VLabel(1)),
            &[w]
        );
        assert_eq!(g.neighbor_type_count(u, Direction::Outgoing), 2);
        assert_eq!(g.degree(u, Direction::Outgoing), 1);
    }

    #[test]
    fn all_neighbors_unions_across_edge_labels() {
        let g = figure7_graph();
        assert_eq!(
            g.all_neighbors(VertexId(0), Direction::Outgoing),
            vec![VertexId(1), VertexId(2), VertexId(3), VertexId(4)]
        );
        assert_eq!(
            g.all_neighbors(VertexId(1), Direction::Incoming),
            vec![VertexId(0), VertexId(2)]
        );
        assert!(g.all_neighbors(VertexId(4), Direction::Outgoing).is_empty());
    }

    #[test]
    fn neighbors_with_label_any_edge_unions_edge_labels() {
        // u -p-> a{L0}, u -q-> b{L0}, u -p-> c{L1}
        let mut b = LabeledGraphBuilder::new();
        let u = b.add_vertex(vec![]);
        let a = b.add_vertex(vec![VLabel(0)]);
        let bb = b.add_vertex(vec![VLabel(0)]);
        let c = b.add_vertex(vec![VLabel(1)]);
        b.add_edge(u, a, ELabel(0));
        b.add_edge(u, bb, ELabel(1));
        b.add_edge(u, c, ELabel(0));
        let g = b.build();
        assert_eq!(
            g.neighbors_with_label_any_edge(u, Direction::Outgoing, VLabel(0)),
            vec![a, bb]
        );
        assert_eq!(
            g.neighbors_with_label_any_edge(u, Direction::Outgoing, VLabel(1)),
            vec![c]
        );
    }

    #[test]
    fn edge_existence_and_labels_between() {
        let g = figure7_graph();
        assert!(g.has_edge(VertexId(0), VertexId(1), ELabel(0)));
        assert!(!g.has_edge(VertexId(1), VertexId(0), ELabel(0)));
        assert!(!g.has_edge(VertexId(0), VertexId(1), ELabel(1)));
        assert_eq!(
            g.edge_labels_between(VertexId(0), VertexId(1)),
            vec![ELabel(0)]
        );
        assert!(g.edge_labels_between(VertexId(1), VertexId(0)).is_empty());
    }

    #[test]
    fn parallel_edges_with_distinct_labels_are_kept() {
        let mut b = LabeledGraphBuilder::new();
        let u = b.add_vertex(vec![]);
        let w = b.add_vertex(vec![]);
        b.add_edge(u, w, ELabel(0));
        b.add_edge(u, w, ELabel(1));
        b.add_edge(u, w, ELabel(1)); // exact duplicate, dropped
        let g = b.build();
        assert_eq!(g.edge_count(), 2);
        let mut labels = g.edge_labels_between(u, w);
        labels.sort();
        assert_eq!(labels, vec![ELabel(0), ELabel(1)]);
        assert_eq!(g.degree(u, Direction::Outgoing), 2);
    }

    #[test]
    fn degree_order_is_descending_and_complete() {
        let g = figure7_graph();
        let order = g.vertices_by_degree_desc();
        assert_eq!(order.len(), g.vertex_count());
        // v0 has total degree 4, strictly the largest.
        assert_eq!(order[0], VertexId(0));
        // Degrees are non-increasing along the order.
        for w in order.windows(2) {
            assert!(g.total_degree(w[0]) >= g.total_degree(w[1]));
        }
        // Every vertex appears exactly once.
        let mut seen: Vec<VertexId> = order.to_vec();
        seen.sort();
        let all: Vec<VertexId> = g.vertices().collect();
        assert_eq!(seen, all);
        // Ties are broken by ascending id (stable sort): v1 (deg 2) and
        // v2 (deg 2) stay in id order.
        let pos = |v: VertexId| order.iter().position(|&x| x == v).unwrap();
        assert!(pos(VertexId(1)) < pos(VertexId(2)));
    }

    #[test]
    fn snapshot_round_trip_preserves_every_access_path() {
        let g = figure7_graph();
        let mut w = turbohom_storage::SnapshotWriter::new();
        g.write_sections(&mut w);
        let idx = crate::predicate_index::PredicateIndex::build(&g);
        idx.write_sections(&mut w);
        let inv = crate::inverse_label::InverseLabelIndex::build(&g);
        inv.write_sections(&mut w);
        let path = std::env::temp_dir().join(format!("turbohom-graph-{}.snap", std::process::id()));
        w.write_to(&path).unwrap();
        let snap = turbohom_storage::Snapshot::open(&path).unwrap();
        let mut cur = snap.cursor();
        let l = LabeledGraph::read_sections(&mut cur).unwrap();
        let lidx = crate::predicate_index::PredicateIndex::read_sections(&mut cur).unwrap();
        let linv = crate::inverse_label::InverseLabelIndex::read_sections(&mut cur).unwrap();
        std::fs::remove_file(&path).unwrap();

        assert_eq!(l.stats(), g.stats());
        for v in g.vertices() {
            assert_eq!(l.labels(v), g.labels(v));
            assert_eq!(l.total_degree(v), g.total_degree(v));
            for dir in [Direction::Outgoing, Direction::Incoming] {
                let types: Vec<NeighborType> = g.neighbor_types(v, dir).collect();
                let ltypes: Vec<NeighborType> = l.neighbor_types(v, dir).collect();
                assert_eq!(types, ltypes);
                for t in types {
                    assert_eq!(
                        l.neighbors(v, dir, t.edge_label),
                        g.neighbors(v, dir, t.edge_label)
                    );
                    match t.vertex_label {
                        Some(vl) => assert_eq!(
                            l.neighbors_typed(v, dir, t.edge_label, vl),
                            g.neighbors_typed(v, dir, t.edge_label, vl)
                        ),
                        None => assert_eq!(
                            l.neighbors_unlabeled(v, dir, t.edge_label),
                            g.neighbors_unlabeled(v, dir, t.edge_label)
                        ),
                    }
                }
            }
        }
        assert_eq!(l.vertices_by_degree_desc(), g.vertices_by_degree_desc());
        for el in 0..g.edge_label_count() as u32 {
            assert_eq!(lidx.subjects(ELabel(el)), idx.subjects(ELabel(el)));
            assert_eq!(lidx.objects(ELabel(el)), idx.objects(ELabel(el)));
            assert_eq!(lidx.edge_count(ELabel(el)), idx.edge_count(ELabel(el)));
        }
        for vl in 0..g.vertex_label_count() as u32 {
            assert_eq!(
                linv.vertices_with_label(VLabel(vl)),
                inv.vertices_with_label(VLabel(vl))
            );
        }
        assert_eq!(linv.unlabeled_vertices(), inv.unlabeled_vertices());
    }

    #[test]
    fn incident_edge_labels_are_sorted_unique() {
        let g = figure7_graph();
        let labels: Vec<ELabel> = g
            .incident_edge_labels(VertexId(0), Direction::Outgoing)
            .collect();
        assert_eq!(labels, vec![ELabel(0), ELabel(1), ELabel(3), ELabel(4)]);
    }
}
