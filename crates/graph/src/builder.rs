//! Mutable builder that freezes into the CSR [`LabeledGraph`].
//!
//! The builder accepts vertices (with label sets) and labeled edges in any
//! order, deduplicates exact duplicate edges, and on [`build`](LabeledGraphBuilder::build)
//! lays out the grouped adjacency described in paper Section 4.2 for both
//! directions.

use crate::ids::{ELabel, VLabel, VertexId};
use crate::labeled_graph::{AdjacencyDirection, ELabelGroup, LabeledGraph, TypeGroup};
use std::collections::HashSet;

/// Builder for [`LabeledGraph`].
#[derive(Debug, Default, Clone)]
pub struct LabeledGraphBuilder {
    vertex_labels: Vec<Vec<VLabel>>,
    edges: Vec<(VertexId, VertexId, ELabel)>,
    edge_set: HashSet<(VertexId, VertexId, ELabel)>,
    max_vlabel: Option<u32>,
    max_elabel: Option<u32>,
}

impl LabeledGraphBuilder {
    /// Creates an empty builder.
    pub fn new() -> Self {
        Self::default()
    }

    /// Creates a builder with capacity hints.
    pub fn with_capacity(vertices: usize, edges: usize) -> Self {
        LabeledGraphBuilder {
            vertex_labels: Vec::with_capacity(vertices),
            edges: Vec::with_capacity(edges),
            edge_set: HashSet::with_capacity(edges),
            max_vlabel: None,
            max_elabel: None,
        }
    }

    /// Adds a vertex with the given label set and returns its id.
    pub fn add_vertex(&mut self, mut labels: Vec<VLabel>) -> VertexId {
        labels.sort_unstable();
        labels.dedup();
        for l in &labels {
            self.max_vlabel = Some(self.max_vlabel.map_or(l.0, |m| m.max(l.0)));
        }
        let id = VertexId(self.vertex_labels.len() as u32);
        self.vertex_labels.push(labels);
        id
    }

    /// Adds `extra` labels to an existing vertex (used by the type-aware
    /// transformation when types are discovered after the vertex).
    ///
    /// # Panics
    /// Panics if `v` has not been added to this builder.
    pub fn add_labels(&mut self, v: VertexId, extra: &[VLabel]) {
        for l in extra {
            self.max_vlabel = Some(self.max_vlabel.map_or(l.0, |m| m.max(l.0)));
        }
        let labels = &mut self.vertex_labels[v.index()];
        labels.extend_from_slice(extra);
        labels.sort_unstable();
        labels.dedup();
    }

    /// Adds a directed labeled edge. Exact duplicates are ignored.
    ///
    /// # Panics
    /// Panics if either endpoint has not been added to this builder.
    pub fn add_edge(&mut self, from: VertexId, to: VertexId, label: ELabel) {
        assert!(
            from.index() < self.vertex_labels.len(),
            "edge source {from} not added"
        );
        assert!(
            to.index() < self.vertex_labels.len(),
            "edge target {to} not added"
        );
        if self.edge_set.insert((from, to, label)) {
            self.max_elabel = Some(self.max_elabel.map_or(label.0, |m| m.max(label.0)));
            self.edges.push((from, to, label));
        }
    }

    /// The number of vertices added so far.
    pub fn vertex_count(&self) -> usize {
        self.vertex_labels.len()
    }

    /// The number of distinct edges added so far.
    pub fn edge_count(&self) -> usize {
        self.edges.len()
    }

    /// Freezes the builder into an immutable [`LabeledGraph`].
    pub fn build(self) -> LabeledGraph {
        let n = self.vertex_labels.len();
        let num_vlabels = self.max_vlabel.map_or(0, |m| m as usize + 1);
        let num_elabels = self.max_elabel.map_or(0, |m| m as usize + 1);

        // Vertex label CSR.
        let mut label_offsets = Vec::with_capacity(n + 1);
        let mut labels = Vec::new();
        label_offsets.push(0u32);
        for ls in &self.vertex_labels {
            labels.extend_from_slice(ls);
            label_offsets.push(labels.len() as u32);
        }

        let outgoing = build_direction(n, &self.vertex_labels, self.edges.iter().copied());
        let incoming = build_direction(
            n,
            &self.vertex_labels,
            self.edges.iter().map(|&(f, t, l)| (t, f, l)),
        );

        LabeledGraph {
            num_vertices: n,
            num_edges: self.edges.len(),
            num_vlabels,
            num_elabels,
            label_offsets,
            labels,
            outgoing,
            incoming,
        }
    }
}

/// Builds one adjacency direction. `edges` yields `(source, target, label)`
/// pairs already oriented for this direction.
fn build_direction(
    n: usize,
    vertex_labels: &[Vec<VLabel>],
    edges: impl Iterator<Item = (VertexId, VertexId, ELabel)>,
) -> AdjacencyDirection {
    // Bucket edges per source vertex.
    let mut per_vertex: Vec<Vec<(ELabel, VertexId)>> = vec![Vec::new(); n];
    let mut degrees = vec![0u32; n];
    for (from, to, label) in edges {
        per_vertex[from.index()].push((label, to));
        degrees[from.index()] += 1;
    }

    let mut vertex_offsets = Vec::with_capacity(n + 1);
    let mut elabel_groups: Vec<ELabelGroup> = Vec::new();
    let mut type_groups: Vec<TypeGroup> = Vec::new();
    let mut targets: Vec<VertexId> = Vec::new();
    let mut typed_targets: Vec<VertexId> = Vec::new();

    vertex_offsets.push(0u32);
    for bucket in per_vertex.iter_mut() {
        // Sort by (edge label, target) so each edge-label group is contiguous
        // and its target list is sorted.
        bucket.sort_unstable();
        let mut i = 0usize;
        while i < bucket.len() {
            let el = bucket[i].0;
            let mut j = i;
            while j < bucket.len() && bucket[j].0 == el {
                j += 1;
            }
            let group_targets: Vec<VertexId> = bucket[i..j].iter().map(|&(_, t)| t).collect();
            // (duplicates were removed at insert time, and sort keeps order)
            let target_start = targets.len() as u32;
            targets.extend_from_slice(&group_targets);
            let target_end = targets.len() as u32;

            // Type groups: neighbor label → sorted targets. A neighbor with
            // multiple labels lands in several groups; an unlabeled neighbor
            // lands in the `None` group.
            let mut by_label: std::collections::BTreeMap<Option<VLabel>, Vec<VertexId>> =
                std::collections::BTreeMap::new();
            for &t in &group_targets {
                let nls = &vertex_labels[t.index()];
                if nls.is_empty() {
                    by_label.entry(None).or_default().push(t);
                } else {
                    for &nl in nls {
                        by_label.entry(Some(nl)).or_default().push(t);
                    }
                }
            }
            let type_start = type_groups.len() as u32;
            for (vl, ts) in by_label {
                let start = typed_targets.len() as u32;
                typed_targets.extend_from_slice(&ts);
                let end = typed_targets.len() as u32;
                type_groups.push(TypeGroup {
                    vlabel: vl,
                    start,
                    end,
                });
            }
            let type_end = type_groups.len() as u32;

            elabel_groups.push(ELabelGroup {
                elabel: el,
                target_start,
                target_end,
                type_start,
                type_end,
            });
            i = j;
        }
        vertex_offsets.push(elabel_groups.len() as u32);
    }

    AdjacencyDirection {
        vertex_offsets,
        elabel_groups,
        type_groups,
        targets,
        typed_targets,
        degrees,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ids::Direction;

    #[test]
    fn empty_graph_builds() {
        let g = LabeledGraphBuilder::new().build();
        assert_eq!(g.vertex_count(), 0);
        assert_eq!(g.edge_count(), 0);
        assert_eq!(g.vertex_label_count(), 0);
        assert_eq!(g.edge_label_count(), 0);
    }

    #[test]
    fn vertex_label_sets_are_sorted_and_deduped() {
        let mut b = LabeledGraphBuilder::new();
        let v = b.add_vertex(vec![VLabel(3), VLabel(1), VLabel(3)]);
        let g = b.build();
        assert_eq!(g.labels(v), &[VLabel(1), VLabel(3)]);
    }

    #[test]
    fn add_labels_merges_into_existing_set() {
        let mut b = LabeledGraphBuilder::new();
        let v = b.add_vertex(vec![VLabel(2)]);
        b.add_labels(v, &[VLabel(0), VLabel(2), VLabel(5)]);
        let g = b.build();
        assert_eq!(g.labels(v), &[VLabel(0), VLabel(2), VLabel(5)]);
        assert_eq!(g.vertex_label_count(), 6);
    }

    #[test]
    #[should_panic(expected = "not added")]
    fn edge_with_unknown_endpoint_panics() {
        let mut b = LabeledGraphBuilder::new();
        let v = b.add_vertex(vec![]);
        b.add_edge(v, VertexId(5), ELabel(0));
    }

    #[test]
    fn neighbors_are_sorted_even_with_unsorted_insertion() {
        let mut b = LabeledGraphBuilder::new();
        let u = b.add_vertex(vec![]);
        let targets: Vec<VertexId> = (0..20).map(|_| b.add_vertex(vec![VLabel(0)])).collect();
        // Insert in reverse.
        for &t in targets.iter().rev() {
            b.add_edge(u, t, ELabel(0));
        }
        let g = b.build();
        let ns = g.neighbors(u, Direction::Outgoing, ELabel(0));
        assert_eq!(ns.len(), 20);
        assert!(crate::ops::is_sorted_set(ns));
        let typed = g.neighbors_typed(u, Direction::Outgoing, ELabel(0), VLabel(0));
        assert_eq!(typed, ns);
    }

    #[test]
    fn label_space_sizes_follow_max_ids() {
        let mut b = LabeledGraphBuilder::new();
        let u = b.add_vertex(vec![VLabel(7)]);
        let w = b.add_vertex(vec![]);
        b.add_edge(u, w, ELabel(9));
        let g = b.build();
        assert_eq!(g.vertex_label_count(), 8);
        assert_eq!(g.edge_label_count(), 10);
    }

    #[test]
    fn builder_counts_match_built_graph() {
        let mut b = LabeledGraphBuilder::new();
        let u = b.add_vertex(vec![]);
        let w = b.add_vertex(vec![]);
        b.add_edge(u, w, ELabel(0));
        b.add_edge(u, w, ELabel(0)); // duplicate
        b.add_edge(w, u, ELabel(0));
        assert_eq!(b.vertex_count(), 2);
        assert_eq!(b.edge_count(), 2);
        let g = b.build();
        assert_eq!(g.vertex_count(), 2);
        assert_eq!(g.edge_count(), 2);
    }
}
