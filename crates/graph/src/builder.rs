//! Mutable builder that freezes into the CSR [`LabeledGraph`].
//!
//! The builder accepts vertices (with label sets) and labeled edges in any
//! order, deduplicates exact duplicate edges, and on [`build`](LabeledGraphBuilder::build)
//! lays out the grouped adjacency described in paper Section 4.2 for both
//! directions.

use crate::ids::{ELabel, VLabel, VertexId};
use crate::labeled_graph::{AdjacencyDirection, ELabelGroup, LabeledGraph, TypeGroup};
use std::collections::HashSet;

/// Builder for [`LabeledGraph`].
#[derive(Debug, Default, Clone)]
pub struct LabeledGraphBuilder {
    vertex_labels: Vec<Vec<VLabel>>,
    edges: Vec<(VertexId, VertexId, ELabel)>,
    edge_set: HashSet<(VertexId, VertexId, ELabel)>,
    max_vlabel: Option<u32>,
    max_elabel: Option<u32>,
}

impl LabeledGraphBuilder {
    /// Creates an empty builder.
    pub fn new() -> Self {
        Self::default()
    }

    /// Creates a builder with capacity hints.
    pub fn with_capacity(vertices: usize, edges: usize) -> Self {
        LabeledGraphBuilder {
            vertex_labels: Vec::with_capacity(vertices),
            edges: Vec::with_capacity(edges),
            edge_set: HashSet::with_capacity(edges),
            max_vlabel: None,
            max_elabel: None,
        }
    }

    /// Adds a vertex with the given label set and returns its id.
    pub fn add_vertex(&mut self, mut labels: Vec<VLabel>) -> VertexId {
        labels.sort_unstable();
        labels.dedup();
        for l in &labels {
            self.max_vlabel = Some(self.max_vlabel.map_or(l.0, |m| m.max(l.0)));
        }
        let id = VertexId(self.vertex_labels.len() as u32);
        self.vertex_labels.push(labels);
        id
    }

    /// Adds `extra` labels to an existing vertex (used by the type-aware
    /// transformation when types are discovered after the vertex).
    ///
    /// # Panics
    /// Panics if `v` has not been added to this builder.
    pub fn add_labels(&mut self, v: VertexId, extra: &[VLabel]) {
        for l in extra {
            self.max_vlabel = Some(self.max_vlabel.map_or(l.0, |m| m.max(l.0)));
        }
        let labels = &mut self.vertex_labels[v.index()];
        labels.extend_from_slice(extra);
        labels.sort_unstable();
        labels.dedup();
    }

    /// Adds a directed labeled edge. Exact duplicates are ignored.
    ///
    /// # Panics
    /// Panics if either endpoint has not been added to this builder.
    pub fn add_edge(&mut self, from: VertexId, to: VertexId, label: ELabel) {
        assert!(
            from.index() < self.vertex_labels.len(),
            "edge source {from} not added"
        );
        assert!(
            to.index() < self.vertex_labels.len(),
            "edge target {to} not added"
        );
        if self.edge_set.insert((from, to, label)) {
            self.max_elabel = Some(self.max_elabel.map_or(label.0, |m| m.max(label.0)));
            self.edges.push((from, to, label));
        }
    }

    /// The number of vertices added so far.
    pub fn vertex_count(&self) -> usize {
        self.vertex_labels.len()
    }

    /// The number of distinct edges added so far.
    pub fn edge_count(&self) -> usize {
        self.edges.len()
    }

    /// Freezes the builder into an immutable [`LabeledGraph`].
    pub fn build(self) -> LabeledGraph {
        let n = self.vertex_labels.len();
        let num_vlabels = self.max_vlabel.map_or(0, |m| m as usize + 1);
        let num_elabels = self.max_elabel.map_or(0, |m| m as usize + 1);

        // Vertex label CSR.
        let mut label_offsets = Vec::with_capacity(n + 1);
        let mut labels = Vec::new();
        label_offsets.push(0u32);
        for ls in &self.vertex_labels {
            labels.extend_from_slice(ls);
            label_offsets.push(labels.len() as u32);
        }

        let outgoing = build_direction(n, &self.vertex_labels, &self.edges, false);
        let incoming = build_direction(n, &self.vertex_labels, &self.edges, true);

        // Degree-descending start order (ties broken by ascending id, since
        // the sort is stable): the parallel scheduler visits candidate-region
        // start vertices heaviest-first so the expensive regions are claimed
        // early and only cheap tails remain to steal.
        let mut degree_order: Vec<VertexId> = (0..n as u32).map(VertexId).collect();
        degree_order.sort_by_key(|v| {
            std::cmp::Reverse(
                outgoing.degrees[v.index()] as u64 + incoming.degrees[v.index()] as u64,
            )
        });

        LabeledGraph {
            num_vertices: n,
            num_edges: self.edges.len(),
            num_vlabels,
            num_elabels,
            label_offsets: label_offsets.into(),
            labels: labels.into(),
            outgoing,
            incoming,
            degree_order: degree_order.into(),
        }
    }
}

/// Builds one adjacency direction with a counting-sort layout: one degree
/// pass, one prefix-sum placement pass into a single flat edge buffer, then a
/// per-row sort. Compared to per-vertex `Vec` buckets this does O(1)
/// allocations for the edge rows and keeps each row contiguous in memory.
/// With `swapped == true` the edges are interpreted target→source (the
/// incoming direction).
fn build_direction(
    n: usize,
    vertex_labels: &[Vec<VLabel>],
    edges: &[(VertexId, VertexId, ELabel)],
    swapped: bool,
) -> AdjacencyDirection {
    // Counting pass: the per-source edge counts double as the degree array.
    let mut degrees = vec![0u32; n];
    for &(f, t, _) in edges {
        let src = if swapped { t } else { f };
        degrees[src.index()] += 1;
    }

    // Prefix sums give every vertex a contiguous row in one flat buffer.
    let mut row_starts = Vec::with_capacity(n + 1);
    let mut total = 0usize;
    row_starts.push(0usize);
    for &d in &degrees {
        total += d as usize;
        row_starts.push(total);
    }

    // Placement pass.
    let mut rows: Vec<(ELabel, VertexId)> = vec![(ELabel(0), VertexId(0)); total];
    let mut cursors = row_starts.clone();
    for &(f, t, l) in edges {
        let (src, dst) = if swapped { (t, f) } else { (f, t) };
        let c = &mut cursors[src.index()];
        rows[*c] = (l, dst);
        *c += 1;
    }

    let mut vertex_offsets = Vec::with_capacity(n + 1);
    let mut elabel_groups: Vec<ELabelGroup> = Vec::new();
    let mut type_groups: Vec<TypeGroup> = Vec::new();
    let mut targets: Vec<VertexId> = Vec::with_capacity(total);
    let mut typed_targets: Vec<VertexId> = Vec::new();
    // Scratch reused across rows. The key maps `None` to 0 and `Some(l)` to
    // `l + 1`, preserving the `Option<VLabel>` ordering (`None < Some`) that
    // the typed-group binary searches rely on.
    let mut typed_scratch: Vec<(u32, VertexId)> = Vec::new();

    vertex_offsets.push(0u32);
    for v in 0..n {
        let row = &mut rows[row_starts[v]..row_starts[v + 1]];
        // Sort by (edge label, target) so each edge-label group is contiguous
        // and its target list is sorted. Duplicates were removed at insert
        // time, so every run of equal edge labels is a strict sorted set.
        row.sort_unstable();
        let mut i = 0usize;
        while i < row.len() {
            let el = row[i].0;
            let mut j = i;
            while j < row.len() && row[j].0 == el {
                j += 1;
            }
            let target_start = targets.len() as u32;
            targets.extend(row[i..j].iter().map(|&(_, t)| t));
            let target_end = targets.len() as u32;

            // Type groups: neighbor label → sorted targets. A neighbor with
            // multiple labels lands in several groups; an unlabeled neighbor
            // lands in the `None` group.
            typed_scratch.clear();
            for &(_, t) in &row[i..j] {
                let nls = &vertex_labels[t.index()];
                if nls.is_empty() {
                    typed_scratch.push((0, t));
                } else {
                    for &nl in nls {
                        typed_scratch.push((nl.0 + 1, t));
                    }
                }
            }
            typed_scratch.sort_unstable();
            let type_start = type_groups.len() as u32;
            let mut k = 0usize;
            while k < typed_scratch.len() {
                let key = typed_scratch[k].0;
                let start = typed_targets.len() as u32;
                while k < typed_scratch.len() && typed_scratch[k].0 == key {
                    typed_targets.push(typed_scratch[k].1);
                    k += 1;
                }
                type_groups.push(TypeGroup {
                    vlabel_key: key,
                    start,
                    end: typed_targets.len() as u32,
                });
            }
            let type_end = type_groups.len() as u32;

            elabel_groups.push(ELabelGroup {
                elabel: el,
                target_start,
                target_end,
                type_start,
                type_end,
            });
            i = j;
        }
        vertex_offsets.push(elabel_groups.len() as u32);
    }

    AdjacencyDirection {
        vertex_offsets: vertex_offsets.into(),
        elabel_groups: elabel_groups.into(),
        type_groups: type_groups.into(),
        targets: targets.into(),
        typed_targets: typed_targets.into(),
        degrees: degrees.into(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ids::Direction;

    #[test]
    fn empty_graph_builds() {
        let g = LabeledGraphBuilder::new().build();
        assert_eq!(g.vertex_count(), 0);
        assert_eq!(g.edge_count(), 0);
        assert_eq!(g.vertex_label_count(), 0);
        assert_eq!(g.edge_label_count(), 0);
    }

    #[test]
    fn vertex_label_sets_are_sorted_and_deduped() {
        let mut b = LabeledGraphBuilder::new();
        let v = b.add_vertex(vec![VLabel(3), VLabel(1), VLabel(3)]);
        let g = b.build();
        assert_eq!(g.labels(v), &[VLabel(1), VLabel(3)]);
    }

    #[test]
    fn add_labels_merges_into_existing_set() {
        let mut b = LabeledGraphBuilder::new();
        let v = b.add_vertex(vec![VLabel(2)]);
        b.add_labels(v, &[VLabel(0), VLabel(2), VLabel(5)]);
        let g = b.build();
        assert_eq!(g.labels(v), &[VLabel(0), VLabel(2), VLabel(5)]);
        assert_eq!(g.vertex_label_count(), 6);
    }

    #[test]
    #[should_panic(expected = "not added")]
    fn edge_with_unknown_endpoint_panics() {
        let mut b = LabeledGraphBuilder::new();
        let v = b.add_vertex(vec![]);
        b.add_edge(v, VertexId(5), ELabel(0));
    }

    #[test]
    fn neighbors_are_sorted_even_with_unsorted_insertion() {
        let mut b = LabeledGraphBuilder::new();
        let u = b.add_vertex(vec![]);
        let targets: Vec<VertexId> = (0..20).map(|_| b.add_vertex(vec![VLabel(0)])).collect();
        // Insert in reverse.
        for &t in targets.iter().rev() {
            b.add_edge(u, t, ELabel(0));
        }
        let g = b.build();
        let ns = g.neighbors(u, Direction::Outgoing, ELabel(0));
        assert_eq!(ns.len(), 20);
        assert!(crate::ops::is_sorted_set(ns));
        let typed = g.neighbors_typed(u, Direction::Outgoing, ELabel(0), VLabel(0));
        assert_eq!(typed, ns);
    }

    #[test]
    fn label_space_sizes_follow_max_ids() {
        let mut b = LabeledGraphBuilder::new();
        let u = b.add_vertex(vec![VLabel(7)]);
        let w = b.add_vertex(vec![]);
        b.add_edge(u, w, ELabel(9));
        let g = b.build();
        assert_eq!(g.vertex_label_count(), 8);
        assert_eq!(g.edge_label_count(), 10);
    }

    #[test]
    fn builder_counts_match_built_graph() {
        let mut b = LabeledGraphBuilder::new();
        let u = b.add_vertex(vec![]);
        let w = b.add_vertex(vec![]);
        b.add_edge(u, w, ELabel(0));
        b.add_edge(u, w, ELabel(0)); // duplicate
        b.add_edge(w, u, ELabel(0));
        assert_eq!(b.vertex_count(), 2);
        assert_eq!(b.edge_count(), 2);
        let g = b.build();
        assert_eq!(g.vertex_count(), 2);
        assert_eq!(g.edge_count(), 2);
    }
}
