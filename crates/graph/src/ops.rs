//! Sorted-set kernels.
//!
//! The `+INT` optimization of the paper replaces per-candidate binary-search
//! `IsJoinable` probes by one k-way intersection between the candidate list
//! and the adjacency lists of already-matched vertices (Section 4.3). The
//! paper's complexity argument — `min(O(|CR| + Σ|adj|), O(|CR| · Σ log|adj|))`
//! — corresponds to choosing between the linear merge and the galloping
//! (binary-search) strategy; [`intersect_adaptive`] makes that choice per
//! pair based on the size ratio.
//!
//! All functions require their inputs to be strictly increasing sequences
//! (sorted, duplicate free), which is what the CSR builder produces.

use crate::ids::VertexId;

/// Returns `true` if `values` is strictly increasing (a canonical sorted set).
pub fn is_sorted_set(values: &[VertexId]) -> bool {
    values.windows(2).all(|w| w[0] < w[1])
}

/// Linear merge intersection of two sorted sets.
pub fn intersect_merge(a: &[VertexId], b: &[VertexId]) -> Vec<VertexId> {
    let mut out = Vec::with_capacity(a.len().min(b.len()));
    let (mut i, mut j) = (0usize, 0usize);
    while i < a.len() && j < b.len() {
        match a[i].cmp(&b[j]) {
            std::cmp::Ordering::Less => i += 1,
            std::cmp::Ordering::Greater => j += 1,
            std::cmp::Ordering::Equal => {
                out.push(a[i]);
                i += 1;
                j += 1;
            }
        }
    }
    out
}

/// Galloping (exponential search) intersection: probes each element of the
/// smaller set into the larger one. Wins when the sizes are very skewed,
/// mirroring the binary-search flavour of the original `IsJoinable`.
pub fn intersect_galloping(small: &[VertexId], large: &[VertexId]) -> Vec<VertexId> {
    debug_assert!(small.len() <= large.len());
    let mut out = Vec::with_capacity(small.len());
    let mut lo = 0usize;
    for &x in small {
        // Exponential search for x in large[lo..].
        let mut step = 1usize;
        let mut hi = lo;
        while hi < large.len() && large[hi] < x {
            lo = hi + 1;
            hi = lo + step;
            step *= 2;
        }
        // Include index `hi` itself in the window: the loop stopped because
        // large[hi] >= x, so large[hi] may be exactly x.
        let hi = (hi + 1).min(large.len());
        match large[lo..hi].binary_search(&x) {
            Ok(pos) => {
                out.push(x);
                lo += pos + 1;
            }
            Err(pos) => {
                lo += pos;
            }
        }
        if lo >= large.len() {
            break;
        }
    }
    out
}

/// Intersection that picks merge or galloping based on the size ratio of the
/// two inputs. The crossover constant 16 follows the usual rule of thumb
/// (galloping pays off when one list is more than an order of magnitude
/// smaller).
pub fn intersect_adaptive(a: &[VertexId], b: &[VertexId]) -> Vec<VertexId> {
    if a.is_empty() || b.is_empty() {
        return Vec::new();
    }
    let (small, large) = if a.len() <= b.len() { (a, b) } else { (b, a) };
    if large.len() / small.len().max(1) >= 16 {
        intersect_galloping(small, large)
    } else {
        intersect_merge(small, large)
    }
}

/// k-way intersection of sorted sets, smallest-first to keep intermediate
/// results minimal. Returns the empty set when `lists` is empty.
pub fn intersect_k(lists: &[&[VertexId]]) -> Vec<VertexId> {
    match lists.len() {
        0 => Vec::new(),
        1 => lists[0].to_vec(),
        _ => {
            let mut order: Vec<usize> = (0..lists.len()).collect();
            order.sort_by_key(|&i| lists[i].len());
            let mut acc = intersect_adaptive(lists[order[0]], lists[order[1]]);
            for &i in &order[2..] {
                if acc.is_empty() {
                    break;
                }
                acc = intersect_adaptive(&acc, lists[i]);
            }
            acc
        }
    }
}

/// Linear merge intersection into a caller-owned buffer (cleared first).
pub fn intersect_merge_into(a: &[VertexId], b: &[VertexId], out: &mut Vec<VertexId>) {
    out.clear();
    let (mut i, mut j) = (0usize, 0usize);
    while i < a.len() && j < b.len() {
        match a[i].cmp(&b[j]) {
            std::cmp::Ordering::Less => i += 1,
            std::cmp::Ordering::Greater => j += 1,
            std::cmp::Ordering::Equal => {
                out.push(a[i]);
                i += 1;
                j += 1;
            }
        }
    }
}

/// Galloping intersection into a caller-owned buffer (cleared first).
pub fn intersect_galloping_into(small: &[VertexId], large: &[VertexId], out: &mut Vec<VertexId>) {
    debug_assert!(small.len() <= large.len());
    out.clear();
    let mut lo = 0usize;
    for &x in small {
        let mut step = 1usize;
        let mut hi = lo;
        while hi < large.len() && large[hi] < x {
            lo = hi + 1;
            hi = lo + step;
            step *= 2;
        }
        let hi = (hi + 1).min(large.len());
        match large[lo..hi].binary_search(&x) {
            Ok(pos) => {
                out.push(x);
                lo += pos + 1;
            }
            Err(pos) => {
                lo += pos;
            }
        }
        if lo >= large.len() {
            break;
        }
    }
}

/// Adaptive intersection into a caller-owned buffer (cleared first).
pub fn intersect_adaptive_into(a: &[VertexId], b: &[VertexId], out: &mut Vec<VertexId>) {
    out.clear();
    if a.is_empty() || b.is_empty() {
        return;
    }
    let (small, large) = if a.len() <= b.len() { (a, b) } else { (b, a) };
    if large.len() / small.len().max(1) >= 16 {
        intersect_galloping_into(small, large, out);
    } else {
        intersect_merge_into(small, large, out);
    }
}

/// k-way intersection into caller-owned buffers, ping-ponging between `out`
/// and `scratch` so the enumeration hot path allocates nothing per call. The
/// result always ends up in `out`; `scratch` holds garbage afterwards.
pub fn intersect_k_into(
    lists: &[&[VertexId]],
    out: &mut Vec<VertexId>,
    scratch: &mut Vec<VertexId>,
) {
    out.clear();
    match lists.len() {
        0 => {}
        1 => out.extend_from_slice(lists[0]),
        2 => intersect_adaptive_into(lists[0], lists[1], out),
        _ => {
            let mut order: Vec<usize> = (0..lists.len()).collect();
            order.sort_by_key(|&i| lists[i].len());
            intersect_adaptive_into(lists[order[0]], lists[order[1]], out);
            for &i in &order[2..] {
                if out.is_empty() {
                    break;
                }
                intersect_adaptive_into(out, lists[i], scratch);
                std::mem::swap(out, scratch);
            }
        }
    }
}

/// Union of two sorted sets.
pub fn union_sorted(a: &[VertexId], b: &[VertexId]) -> Vec<VertexId> {
    let mut out = Vec::with_capacity(a.len() + b.len());
    let (mut i, mut j) = (0usize, 0usize);
    while i < a.len() && j < b.len() {
        match a[i].cmp(&b[j]) {
            std::cmp::Ordering::Less => {
                out.push(a[i]);
                i += 1;
            }
            std::cmp::Ordering::Greater => {
                out.push(b[j]);
                j += 1;
            }
            std::cmp::Ordering::Equal => {
                out.push(a[i]);
                i += 1;
                j += 1;
            }
        }
    }
    out.extend_from_slice(&a[i..]);
    out.extend_from_slice(&b[j..]);
    out
}

/// Union of many sorted sets (used when a blank edge/vertex label forces the
/// engine to union several neighbor-type groups, Section 4.2).
pub fn union_k(lists: &[&[VertexId]]) -> Vec<VertexId> {
    match lists.len() {
        0 => Vec::new(),
        1 => lists[0].to_vec(),
        _ => {
            // Simple doubling merge; list counts here are small (bounded by
            // the number of neighbor types of one vertex).
            let mut acc = union_sorted(lists[0], lists[1]);
            for l in &lists[2..] {
                acc = union_sorted(&acc, l);
            }
            acc
        }
    }
}

/// Binary-search membership test in a sorted set.
#[inline]
pub fn contains_sorted(set: &[VertexId], value: VertexId) -> bool {
    set.binary_search(&value).is_ok()
}

/// Sorts and deduplicates a vector in place, producing a canonical sorted set.
pub fn canonicalize(values: &mut Vec<VertexId>) {
    values.sort_unstable();
    values.dedup();
}

#[cfg(test)]
mod tests {
    use super::*;

    fn vs(ids: &[u32]) -> Vec<VertexId> {
        ids.iter().map(|&i| VertexId(i)).collect()
    }

    #[test]
    fn sorted_set_detection() {
        assert!(is_sorted_set(&vs(&[1, 2, 5])));
        assert!(is_sorted_set(&vs(&[])));
        assert!(!is_sorted_set(&vs(&[1, 1, 2])));
        assert!(!is_sorted_set(&vs(&[3, 2])));
    }

    #[test]
    fn merge_intersection_basic() {
        assert_eq!(
            intersect_merge(&vs(&[1, 3, 5, 7]), &vs(&[2, 3, 4, 7, 9])),
            vs(&[3, 7])
        );
        assert_eq!(intersect_merge(&vs(&[]), &vs(&[1, 2])), vs(&[]));
    }

    #[test]
    fn galloping_matches_merge() {
        let small = vs(&[5, 100, 900, 901]);
        let large: Vec<VertexId> = (0..1000).map(VertexId).collect();
        assert_eq!(
            intersect_galloping(&small, &large),
            intersect_merge(&small, &large)
        );
    }

    #[test]
    fn galloping_handles_disjoint_and_exhausted_inputs() {
        let small = vs(&[2000, 3000]);
        let large: Vec<VertexId> = (0..100).map(VertexId).collect();
        assert!(intersect_galloping(&small, &large).is_empty());
        let small2 = vs(&[1, 99]);
        assert_eq!(intersect_galloping(&small2, &large), vs(&[1, 99]));
    }

    #[test]
    fn adaptive_equals_merge_on_random_inputs() {
        // Deterministic pseudo-random without external crates.
        let mut x: u64 = 0x9E3779B97F4A7C15;
        let mut next = move || {
            x ^= x << 13;
            x ^= x >> 7;
            x ^= x << 17;
            x
        };
        for _ in 0..50 {
            let mut a: Vec<VertexId> = (0..(next() % 200))
                .map(|_| VertexId((next() % 500) as u32))
                .collect();
            let mut b: Vec<VertexId> = (0..(next() % 40))
                .map(|_| VertexId((next() % 500) as u32))
                .collect();
            canonicalize(&mut a);
            canonicalize(&mut b);
            assert_eq!(intersect_adaptive(&a, &b), intersect_merge(&a, &b));
        }
    }

    #[test]
    fn k_way_intersection() {
        let a = vs(&[1, 2, 3, 4, 5, 6]);
        let b = vs(&[2, 4, 6, 8]);
        let c = vs(&[4, 5, 6, 7]);
        assert_eq!(intersect_k(&[&a, &b, &c]), vs(&[4, 6]));
        assert_eq!(intersect_k(&[]), vs(&[]));
        assert_eq!(intersect_k(&[&a]), a);
    }

    #[test]
    fn k_way_intersection_short_circuits_on_empty() {
        let a = vs(&[1, 2, 3]);
        let b = vs(&[4, 5]);
        let c = vs(&[1, 2]);
        assert_eq!(intersect_k(&[&a, &b, &c]), vs(&[]));
    }

    #[test]
    fn into_variants_match_allocating_versions() {
        let a = vs(&[1, 2, 3, 4, 5, 6]);
        let b = vs(&[2, 4, 6, 8]);
        let c = vs(&[4, 5, 6, 7]);
        let mut out = vs(&[99, 99]); // stale content must be cleared
        let mut scratch = Vec::new();
        intersect_merge_into(&a, &b, &mut out);
        assert_eq!(out, intersect_merge(&a, &b));
        intersect_galloping_into(&b, &a, &mut out);
        assert_eq!(out, intersect_galloping(&b, &a));
        intersect_adaptive_into(&a, &b, &mut out);
        assert_eq!(out, intersect_adaptive(&a, &b));
        intersect_k_into(&[&a, &b, &c], &mut out, &mut scratch);
        assert_eq!(out, intersect_k(&[&a, &b, &c]));
        intersect_k_into(&[], &mut out, &mut scratch);
        assert!(out.is_empty());
        intersect_k_into(&[&a], &mut out, &mut scratch);
        assert_eq!(out, a);
        intersect_k_into(&[&a, &b], &mut out, &mut scratch);
        assert_eq!(out, intersect_k(&[&a, &b]));
    }

    #[test]
    fn unions() {
        assert_eq!(
            union_sorted(&vs(&[1, 3, 5]), &vs(&[2, 3, 6])),
            vs(&[1, 2, 3, 5, 6])
        );
        let a = vs(&[1, 4]);
        let b = vs(&[2, 4]);
        let c = vs(&[0, 9]);
        assert_eq!(union_k(&[&a, &b, &c]), vs(&[0, 1, 2, 4, 9]));
        assert_eq!(union_k(&[]), vs(&[]));
    }

    #[test]
    fn contains_sorted_works() {
        let a = vs(&[1, 5, 9]);
        assert!(contains_sorted(&a, VertexId(5)));
        assert!(!contains_sorted(&a, VertexId(4)));
    }

    #[test]
    fn canonicalize_sorts_and_dedups() {
        let mut v = vs(&[5, 1, 5, 3, 1]);
        canonicalize(&mut v);
        assert_eq!(v, vs(&[1, 3, 5]));
        assert!(is_sorted_set(&v));
    }
}
