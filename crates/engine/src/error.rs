//! Store-level errors.

use std::fmt;
use turbohom_core::EngineError;
use turbohom_rdf::RdfError;
use turbohom_sparql::ParseError;
use turbohom_storage::SnapshotError;
use turbohom_transform::TransformError;

/// Errors surfaced by the [`Store`](crate::Store) API.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum StoreError {
    /// The RDF input could not be parsed or was malformed.
    Rdf(RdfError),
    /// The SPARQL query could not be parsed.
    Sparql(ParseError),
    /// The query could not be transformed into a query graph.
    Transform(TransformError),
    /// The matching engine rejected the query.
    Engine(EngineError),
    /// A snapshot file could not be written, read or validated. The inner
    /// [`SnapshotError`] distinguishes bad magic, version mismatch,
    /// truncation, checksum failure and structural corruption.
    Snapshot(SnapshotError),
    /// A per-request thread override of `0` was supplied. `0` worker threads
    /// cannot execute anything; callers that want the store default should
    /// pass `None`, so this is rejected instead of silently clamped.
    InvalidThreadCount(usize),
    /// The query falls outside the sharded executor's scope (UNION, a
    /// disconnected pattern, or a triple beyond the halo radius). The inner
    /// message says which rule failed; single-store execution still works.
    NotShardable(String),
}

impl fmt::Display for StoreError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            StoreError::Rdf(e) => write!(f, "RDF error: {e}"),
            StoreError::Sparql(e) => write!(f, "SPARQL error: {e}"),
            StoreError::Transform(e) => write!(f, "transformation error: {e}"),
            StoreError::Engine(e) => write!(f, "engine error: {e}"),
            StoreError::Snapshot(e) => write!(f, "snapshot error: {e}"),
            StoreError::InvalidThreadCount(n) => write!(
                f,
                "invalid thread count {n}: the override must be at least 1 (pass None for the store default)"
            ),
            StoreError::NotShardable(why) => write!(f, "query is not shardable: {why}"),
        }
    }
}

impl std::error::Error for StoreError {}

impl From<RdfError> for StoreError {
    fn from(e: RdfError) -> Self {
        StoreError::Rdf(e)
    }
}

impl From<ParseError> for StoreError {
    fn from(e: ParseError) -> Self {
        StoreError::Sparql(e)
    }
}

impl From<TransformError> for StoreError {
    fn from(e: TransformError) -> Self {
        StoreError::Transform(e)
    }
}

impl From<EngineError> for StoreError {
    fn from(e: EngineError) -> Self {
        StoreError::Engine(e)
    }
}

impl From<SnapshotError> for StoreError {
    fn from(e: SnapshotError) -> Self {
        StoreError::Snapshot(e)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn conversions_and_display() {
        let e: StoreError = RdfError::UnknownTermId(3).into();
        assert!(e.to_string().contains("RDF error"));
        let e: StoreError = ParseError {
            message: "bad".into(),
            offset: 2,
        }
        .into();
        assert!(e.to_string().contains("SPARQL"));
        let e: StoreError = TransformError::VariableTypeUnsupported.into();
        assert!(e.to_string().contains("transformation"));
        let e: StoreError = EngineError::DisconnectedQuery.into();
        assert!(e.to_string().contains("engine"));
        let e = StoreError::InvalidThreadCount(0);
        assert!(e.to_string().contains("invalid thread count 0"));
        let e: StoreError = SnapshotError::BadMagic.into();
        assert!(e.to_string().contains("snapshot error"));
        assert!(matches!(e, StoreError::Snapshot(SnapshotError::BadMagic)));
        let e = StoreError::NotShardable("UNION patterns are out of scope".into());
        assert!(e.to_string().contains("not shardable"));
        assert!(e.to_string().contains("UNION"));
    }
}
