//! Sharded scatter-gather execution: a [`ShardedStore`] coordinator over
//! `k` independent [`Store`] shards.
//!
//! The data graph is partitioned once at load time (`turbohom-partition`):
//! every term has one owner shard, and each shard additionally replicates a
//! bounded *halo* of boundary adjacency, so a connected query never needs a
//! distributed join — each shard answers it locally and the coordinator
//! only concatenates.
//!
//! Two pruning layers run before any shard executes:
//!
//! 1. **Summary pruning** (plan time): the query's constant footprint is
//!    matched against each shard's summary graph; shards that provably hold
//!    no result are never planned, let alone executed.
//! 2. **Ownership routing** (plan time): a constant anchor sends the query
//!    to its owner shard alone. A variable anchor fans out to the surviving
//!    shards; each keeps only the rows whose anchor binding it owns, which
//!    makes the concatenation an exact multiset partition of the
//!    single-store answer — no deduplication, byte-identical SPARQL-JSON
//!    (rows are canonically sorted on both paths, see
//!    [`Store::run_plan_traced`]).
//!
//! Queries outside the sharded scope (UNION, disconnected patterns, triples
//! beyond the halo radius) fail with [`StoreError::NotShardable`]; the
//! single-store path still handles them.

use crate::error::StoreError;
use crate::plan::QueryPlan;
use crate::results::QueryResults;
use crate::store::{EngineKind, Store, StoreOptions};
use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Arc;
use std::time::Instant;
use turbohom_core::{merge_step_counts, MatchStats};
use turbohom_partition::{
    analyze_query, footprint, partition_dataset, summary_prunes, Anchor, Manifest, Ownership,
    PartitionConfig, PartitionerKind, ShardSummary, DEFAULT_HALO,
};
use turbohom_rdf::{parse_ntriples, Dataset, InferenceConfig, InferenceEngine};
use turbohom_sparql::{parse_query, Selection};
use turbohom_storage::SnapshotError;
use turbohom_trace::Trace;

/// Construction options for a [`ShardedStore`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ShardedOptions {
    /// Number of shards (clamped to at least 1).
    pub shards: usize,
    /// Materialize the RDFS closure *globally* before partitioning, so every
    /// shard sees exactly the triples the equivalent single store would.
    pub inference: bool,
    /// Worker threads per shard execution (the per-shard TurboHOM++ setting).
    pub threads: usize,
    /// Term → shard assignment strategy.
    pub partitioner: PartitionerKind,
    /// Boundary replication radius (linkage hops).
    pub halo: usize,
}

impl Default for ShardedOptions {
    fn default() -> Self {
        ShardedOptions {
            shards: 4,
            inference: false,
            threads: 1,
            partitioner: PartitionerKind::Hash,
            halo: DEFAULT_HALO,
        }
    }
}

/// A coordinator over `k` shard [`Store`]s plus their summary graphs.
///
/// `Send + Sync` like `Store`; services share one behind an `Arc`.
pub struct ShardedStore {
    shards: Vec<Arc<Store>>,
    summaries: Vec<ShardSummary>,
    ownership: Ownership,
    halo: usize,
    global_triples: usize,
    snapshot_path: Option<PathBuf>,
}

impl std::fmt::Debug for ShardedStore {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("ShardedStore")
            .field("shards", &self.shards.len())
            .field("partitioner", &self.ownership.kind())
            .field("halo", &self.halo)
            .field("global_triples", &self.global_triples)
            .finish()
    }
}

impl ShardedStore {
    /// Partitions a dataset and builds one store per shard. When
    /// `options.inference` is set the RDFS closure is materialized *before*
    /// partitioning (the shard stores are then built without inference), so
    /// sharded answers match a single inferred store exactly.
    pub fn from_dataset_with(
        mut dataset: Dataset,
        options: ShardedOptions,
    ) -> Result<Self, StoreError> {
        if options.inference {
            InferenceEngine::new(InferenceConfig::full()).materialize(&mut dataset);
        }
        let config = PartitionConfig {
            shards: options.shards,
            partitioner: options.partitioner,
            halo: options.halo,
        };
        let parts = partition_dataset(&dataset, &config);
        let store_options = StoreOptions {
            inference: false,
            threads: options.threads,
        };
        let mut shards = Vec::with_capacity(parts.shards.len());
        let mut summaries = Vec::with_capacity(parts.shards.len());
        for shard_dataset in parts.shards {
            summaries.push(ShardSummary::build(&shard_dataset));
            shards.push(Arc::new(Store::from_dataset_with(
                shard_dataset,
                store_options,
            )));
        }
        Ok(ShardedStore {
            shards,
            summaries,
            ownership: parts.ownership,
            halo: parts.halo,
            global_triples: parts.global_triples,
            snapshot_path: None,
        })
    }

    /// Parses an N-Triples document, then partitions it.
    pub fn from_ntriples_with(input: &str, options: ShardedOptions) -> Result<Self, StoreError> {
        Self::from_dataset_with(parse_ntriples(input)?, options)
    }

    /// Writes one snapshot per shard (`<base>.shard<i>.snap` next to `base`)
    /// plus a manifest at `base` itself, and returns the total bytes
    /// written. [`from_manifest`](Self::from_manifest) boots from the
    /// manifest path.
    pub fn save_snapshots(&self, base: &Path) -> Result<u64, StoreError> {
        let file_name = base
            .file_name()
            .and_then(|n| n.to_str())
            .ok_or_else(|| SnapshotError::Io("snapshot path has no file name".into()))?;
        let mut total = 0u64;
        let mut shard_files = Vec::with_capacity(self.shards.len());
        let mut shard_triples = Vec::with_capacity(self.shards.len());
        for (i, shard) in self.shards.iter().enumerate() {
            let name = format!("{file_name}.shard{i}.snap");
            total += shard.save_snapshot(&base.with_file_name(&name))?;
            shard_files.push(name);
            shard_triples.push(shard.triple_count() as u64);
        }
        let manifest = Manifest {
            shards: self.shards.len(),
            halo: self.halo,
            partitioner: self.ownership.kind(),
            buckets: self.ownership.bucket_table().to_vec(),
            shard_files,
            shard_triples,
            global_triples: self.global_triples as u64,
        };
        let text = manifest.to_json();
        std::fs::write(base, &text).map_err(|e| SnapshotError::Io(e.to_string()))?;
        Ok(total + text.len() as u64)
    }

    /// Returns `true` if `path` looks like a shard manifest rather than a
    /// binary snapshot (manifests are JSON; snapshots start with magic
    /// bytes).
    pub fn is_manifest(path: &Path) -> bool {
        std::fs::read(path)
            .ok()
            .and_then(|bytes| {
                bytes
                    .iter()
                    .find(|b| !b.is_ascii_whitespace())
                    .map(|&b| b == b'{')
            })
            .unwrap_or(false)
    }

    /// Boots a sharded store from a manifest written by
    /// [`save_snapshots`](Self::save_snapshots): maps every shard snapshot
    /// and rebuilds the summaries by scanning the shard datasets.
    pub fn from_manifest(path: &Path, threads: usize) -> Result<Self, StoreError> {
        let text = std::fs::read_to_string(path).map_err(|e| SnapshotError::Io(e.to_string()))?;
        let manifest = Manifest::parse(&text).map_err(SnapshotError::Malformed)?;
        let ownership = manifest
            .ownership()
            .expect("Manifest::parse validates the bucket table");
        let mut shards = Vec::with_capacity(manifest.shards);
        let mut summaries = Vec::with_capacity(manifest.shards);
        for file in &manifest.shard_files {
            let shard = Store::from_snapshot_with(&path.with_file_name(file), threads)?;
            summaries.push(ShardSummary::build(shard.dataset()));
            shards.push(Arc::new(shard));
        }
        Ok(ShardedStore {
            shards,
            summaries,
            ownership,
            halo: manifest.halo,
            global_triples: manifest.global_triples as usize,
            snapshot_path: Some(path.to_path_buf()),
        })
    }

    /// Number of shards.
    pub fn shard_count(&self) -> usize {
        self.shards.len()
    }

    /// One shard's store (panics if out of range).
    pub fn shard(&self, i: usize) -> &Arc<Store> {
        &self.shards[i]
    }

    /// The boundary replication radius the shards were built with.
    pub fn halo(&self) -> usize {
        self.halo
    }

    /// Name of the partitioner that assigned ownership.
    pub fn partitioner_name(&self) -> &'static str {
        self.ownership.kind().name()
    }

    /// Triples in the original, unpartitioned dataset (after inference).
    /// Shard-local counts are higher in total because of halo replication.
    pub fn triple_count(&self) -> usize {
        self.global_triples
    }

    /// `"sharded-heap"` or `"sharded-snapshot"`.
    pub fn backend_name(&self) -> &'static str {
        if self.snapshot_path.is_some() {
            "sharded-snapshot"
        } else {
            "sharded-heap"
        }
    }

    /// The manifest file backing this store, if it was booted from one.
    pub fn snapshot_path(&self) -> Option<&Path> {
        self.snapshot_path.as_deref()
    }

    /// `true` when every shard reads from a memory-mapped snapshot.
    pub fn is_mapped(&self) -> bool {
        !self.shards.is_empty() && self.shards.iter().all(|s| s.is_mapped())
    }

    /// The per-shard summary graphs (the EXPLAIN builder probes them to name
    /// the check that prunes each shard).
    pub(crate) fn summaries(&self) -> &[ShardSummary] {
        &self.summaries
    }

    /// The term → shard ownership assignment.
    pub(crate) fn ownership(&self) -> &Ownership {
        &self.ownership
    }

    /// Parses a SPARQL query and builds the sharded plan for `kind`.
    pub fn prepare_plan(&self, sparql: &str, kind: EngineKind) -> Result<ShardedPlan, StoreError> {
        self.prepare_plan_traced(sparql, kind, &Trace::disabled())
    }

    /// Like [`prepare_plan`](Self::prepare_plan), recording `parse`,
    /// `summary_prune` (with `live`/`pruned` counters) and `transform`
    /// stage spans.
    pub fn prepare_plan_traced(
        &self,
        sparql: &str,
        kind: EngineKind,
        trace: &Trace,
    ) -> Result<ShardedPlan, StoreError> {
        let query = {
            let _span = trace.span("parse");
            parse_query(sparql)?
        };
        let shard_query = analyze_query(&query, self.halo).map_err(StoreError::NotShardable)?;

        // Layer 1: summary pruning + ownership routing decide the live set.
        let mut span = trace.span("summary_prune");
        let fp = footprint(&query);
        let mut live: Vec<usize> = Vec::with_capacity(self.shards.len());
        let mut scratch = String::new();
        let route = match &shard_query.anchor {
            Anchor::Constant(term) => Some(self.ownership.owner(term, &mut scratch)),
            Anchor::Variable(_) => None,
        };
        for (i, summary) in self.summaries.iter().enumerate() {
            if route.is_some_and(|owner| owner != i) {
                continue;
            }
            if !summary_prunes(summary, &fp) {
                live.push(i);
            }
        }
        let pruned = self.shards.len() - live.len();
        span.counter("live", live.len() as u64);
        span.counter("pruned", pruned as u64);
        span.finish();

        // The per-shard query: no LIMIT/OFFSET (the coordinator applies the
        // window after the merge), and the anchor variable added to the
        // projection when the filter needs a column the query did not ask
        // for (dropped again after filtering).
        let mut shard_sparql = query.clone();
        shard_sparql.limit = None;
        shard_sparql.offset = None;
        let mut anchor_extended = false;
        let anchor_column = match &shard_query.anchor {
            Anchor::Constant(_) => None,
            Anchor::Variable(var) => {
                let mut projected = query.projected_variables();
                if !projected.contains(var) {
                    projected.push(var.clone());
                    shard_sparql.selection = Selection::Variables(projected.clone());
                    anchor_extended = true;
                }
                Some(projected.iter().position(|v| v == var).unwrap())
            }
        };

        let mut span = trace.span("transform");
        let mut per_shard: Vec<Option<Arc<QueryPlan>>> =
            (0..self.shards.len()).map(|_| None).collect();
        for &i in &live {
            per_shard[i] = Some(Arc::new(self.shards[i].plan_query(&shard_sparql, kind)?));
        }
        span.counter("shard_plans", live.len() as u64);
        span.finish();

        // Mirror the single-store LIMIT-pushdown rule: with an OFFSET the
        // window is the caller's job, so no limit applies at the merge.
        let limit = match query.offset {
            None | Some(0) => query.limit,
            Some(_) => None,
        };
        Ok(ShardedPlan {
            kind,
            projected: query.projected_variables(),
            limit,
            anchor: shard_query.anchor,
            anchor_column,
            anchor_extended,
            per_shard,
            live,
            pruned,
        })
    }

    /// Runs a sharded plan.
    pub fn run_plan(&self, plan: &ShardedPlan) -> Result<QueryResults, StoreError> {
        self.run_plan_traced(plan, None, &Trace::disabled())
    }

    /// Runs a sharded plan, scattering it across the live shards on a
    /// worker pool and gathering the per-shard rows into one canonical
    /// result. Records an `execute` stage span with `shard_fanout` and
    /// `merge` children plus one `shard_execute` roll-up per executed shard.
    pub fn run_plan_traced(
        &self,
        plan: &ShardedPlan,
        threads: Option<usize>,
        trace: &Trace,
    ) -> Result<QueryResults, StoreError> {
        if threads == Some(0) {
            return Err(StoreError::InvalidThreadCount(0));
        }
        let start = Instant::now();
        let mut span = trace.span("execute");
        let parent = span.id();

        let mut fanout = trace.span_under("shard_fanout", parent);
        fanout.counter("live", plan.live.len() as u64);
        fanout.counter("pruned", plan.pruned as u64);
        // One slot per live shard; a small pool of workers drains them via
        // an atomic cursor, each worker reusing its scratch buffer across
        // shard tasks (the ownership filter renders terms into it).
        let mut slots: Vec<Option<Result<QueryResults, StoreError>>> =
            (0..plan.live.len()).map(|_| None).collect();
        let workers = plan
            .live
            .len()
            .min(std::thread::available_parallelism().map_or(4, |n| n.get()))
            .max(1);
        let cursor = AtomicUsize::new(0);
        std::thread::scope(|scope| {
            let mut handles = Vec::with_capacity(workers);
            for _ in 0..workers {
                let cursor = &cursor;
                handles.push(scope.spawn(move || {
                    let mut scratch = ShardScratch::default();
                    let mut done: Vec<(usize, Result<QueryResults, StoreError>)> = Vec::new();
                    loop {
                        let slot = cursor.fetch_add(1, Ordering::Relaxed);
                        if slot >= plan.live.len() {
                            return done;
                        }
                        let shard_id = plan.live[slot];
                        done.push((slot, self.run_shard(plan, shard_id, threads, &mut scratch)));
                    }
                }));
            }
            for handle in handles {
                for (slot, result) in handle.join().expect("shard worker panicked") {
                    slots[slot] = Some(result);
                }
            }
        });
        fanout.finish();

        // Gather. Shard durations are recorded as roll-ups so a pool never
        // skews the span tree (the work happened on worker threads).
        let mut merge = trace.span_under("merge", parent);
        let mut rows = Vec::new();
        let mut stats = MatchStats::default();
        let mut step_rows: Vec<u64> = Vec::new();
        let mut step_estimates: Vec<u64> = Vec::new();
        let mut elapsed_max = std::time::Duration::ZERO;
        for (slot, result) in slots.into_iter().enumerate() {
            let result = result.expect("every live slot is executed")?;
            trace.record_rollup(
                "shard_execute",
                parent,
                result.elapsed,
                &[
                    ("shard", plan.live[slot] as u64),
                    ("rows", result.rows.len() as u64),
                ],
            );
            elapsed_max = elapsed_max.max(result.elapsed);
            stats.merge(&result.stats);
            merge_step_counts(&mut step_rows, &result.step_rows);
            merge_step_counts(&mut step_estimates, &result.step_estimates);
            rows.extend(result.rows);
        }
        stats.shards_executed = plan.live.len();
        stats.shards_pruned = plan.pruned;
        if plan.anchor_extended {
            for row in &mut rows {
                row.pop();
            }
        }
        // The same canonical order the single-store path imposes; the merge
        // is then byte-identical to an unsharded run.
        rows.sort_unstable();
        if let Some(limit) = plan.limit {
            rows.truncate(limit);
        }
        merge.counter("rows", rows.len() as u64);
        merge.finish();

        let results = QueryResults {
            variables: plan.projected.clone(),
            solution_count: rows.len(),
            rows,
            elapsed: start.elapsed().max(elapsed_max),
            stats,
            step_rows,
            step_estimates,
        };
        span.counter("solutions", results.solution_count as u64);
        span.counter("rows", results.rows.len() as u64);
        span.finish();
        Ok(results)
    }

    /// Parses and executes in one call (tests and examples; services cache
    /// the plan).
    pub fn execute(&self, sparql: &str, kind: EngineKind) -> Result<QueryResults, StoreError> {
        self.run_plan(&self.prepare_plan(sparql, kind)?)
    }

    /// Runs one shard's plan and applies the ownership filter for variable
    /// anchors: each shard keeps exactly the rows whose anchor binding it
    /// owns, so the gathered rows partition the global multiset.
    fn run_shard(
        &self,
        plan: &ShardedPlan,
        shard_id: usize,
        threads: Option<usize>,
        scratch: &mut ShardScratch,
    ) -> Result<QueryResults, StoreError> {
        let shard_plan = plan.per_shard[shard_id]
            .as_ref()
            .expect("live shards have plans");
        // Shard spans would tangle with the coordinator's tree (they run on
        // pool threads); durations are re-attached as roll-ups instead.
        let mut results =
            self.shards[shard_id].run_plan_traced(shard_plan, threads, &Trace::disabled())?;
        if let Some(col) = plan.anchor_column {
            let ownership = &self.ownership;
            results.rows.retain(|row| {
                // The anchor comes from a required triple, so it is bound in
                // every row; an absent binding defaults to shard 0.
                row[col].as_ref().map_or(shard_id == 0, |term| {
                    ownership.owner(term, &mut scratch.render) == shard_id
                })
            });
            results.solution_count = results.rows.len();
        }
        Ok(results)
    }
}

/// Per-worker reusable buffers, held across shard tasks so the hot
/// ownership-filter loop never allocates per row.
#[derive(Default)]
struct ShardScratch {
    render: String,
}

/// A prepared sharded plan: the live-shard set decided by summary pruning
/// and ownership routing, plus one single-store plan per live shard.
pub struct ShardedPlan {
    kind: EngineKind,
    projected: Vec<String>,
    /// The merge-time LIMIT (single-store pushdown rule: absent when an
    /// OFFSET shifts the window).
    limit: Option<usize>,
    anchor: Anchor,
    /// Column of the anchor variable in the per-shard output (`None` for
    /// constant anchors, which route instead of filtering).
    anchor_column: Option<usize>,
    /// The anchor column was appended to the projection and is dropped
    /// after filtering.
    anchor_extended: bool,
    per_shard: Vec<Option<Arc<QueryPlan>>>,
    live: Vec<usize>,
    pruned: usize,
}

impl ShardedPlan {
    /// The engine the per-shard plans were prepared for.
    pub fn kind(&self) -> EngineKind {
        self.kind
    }

    /// The projected variable names, in output order.
    pub fn projected_variables(&self) -> &[String] {
        &self.projected
    }

    /// The shards that will execute (after summary pruning and constant
    /// routing), in ascending order.
    pub fn live_shards(&self) -> &[usize] {
        &self.live
    }

    /// Number of shards skipped before execution.
    pub fn pruned_shards(&self) -> usize {
        self.pruned
    }

    /// The anchor the shardability analysis picked.
    pub fn anchor(&self) -> &Anchor {
        &self.anchor
    }

    /// The single-store plan prepared for one shard (`None` for pruned
    /// shards). The EXPLAIN builder walks the live shards' plans.
    pub(crate) fn shard_plan(&self, shard: usize) -> Option<&Arc<QueryPlan>> {
        self.per_shard.get(shard).and_then(|p| p.as_ref())
    }

    /// The merge-time LIMIT, mirroring [`QueryPlan::limit`].
    pub fn limit(&self) -> Option<usize> {
        self.limit
    }
}

/// Either a single [`Store`] or a [`ShardedStore`], behind one dispatch
/// surface so the service layer stays agnostic.
#[derive(Clone)]
pub enum AnyStore {
    /// The classic single-store path.
    Single(Arc<Store>),
    /// The sharded scatter-gather path.
    Sharded(Arc<ShardedStore>),
}

impl AnyStore {
    /// Prepares a plan, recording stage spans into `trace`.
    pub fn prepare_plan_traced(
        &self,
        sparql: &str,
        kind: EngineKind,
        trace: &Trace,
    ) -> Result<AnyPlan, StoreError> {
        match self {
            AnyStore::Single(s) => Ok(AnyPlan::Single(Arc::new(
                s.prepare_plan_traced(sparql, kind, trace)?,
            ))),
            AnyStore::Sharded(s) => Ok(AnyPlan::Sharded(Arc::new(
                s.prepare_plan_traced(sparql, kind, trace)?,
            ))),
        }
    }

    /// Runs a prepared plan, recording execution spans into `trace`.
    /// Panics if the plan came from the other store flavor (the service
    /// keys its cache per store, so plans never cross).
    pub fn run_plan_traced(
        &self,
        plan: &AnyPlan,
        threads: Option<usize>,
        trace: &Trace,
    ) -> Result<QueryResults, StoreError> {
        match (self, plan) {
            (AnyStore::Single(s), AnyPlan::Single(p)) => s.run_plan_traced(p, threads, trace),
            (AnyStore::Sharded(s), AnyPlan::Sharded(p)) => s.run_plan_traced(p, threads, trace),
            _ => panic!("plan prepared by a different store flavor"),
        }
    }

    /// Triples loaded (the original dataset's count on the sharded path).
    pub fn triple_count(&self) -> usize {
        match self {
            AnyStore::Single(s) => s.triple_count(),
            AnyStore::Sharded(s) => s.triple_count(),
        }
    }

    /// Backend label for diagnostics (`"heap"`, `"snapshot"`,
    /// `"sharded-heap"`, `"sharded-snapshot"`).
    pub fn backend_name(&self) -> &'static str {
        match self {
            AnyStore::Single(s) => s.backend_name(),
            AnyStore::Sharded(s) => s.backend_name(),
        }
    }

    /// The snapshot (or manifest) file backing this store, if any.
    pub fn snapshot_path(&self) -> Option<&Path> {
        match self {
            AnyStore::Single(s) => s.snapshot_path(),
            AnyStore::Sharded(s) => s.snapshot_path(),
        }
    }

    /// `true` when the store reads from memory-mapped snapshot(s).
    pub fn is_mapped(&self) -> bool {
        match self {
            AnyStore::Single(s) => s.is_mapped(),
            AnyStore::Sharded(s) => s.is_mapped(),
        }
    }

    /// Parses and executes in one call (sugar for prepare + run; services
    /// cache the plan instead).
    pub fn execute(&self, sparql: &str, kind: EngineKind) -> Result<QueryResults, StoreError> {
        let plan = self.prepare_plan_traced(sparql, kind, &Trace::disabled())?;
        self.run_plan_traced(&plan, None, &Trace::disabled())
    }

    /// Number of shards (`None` on the single-store path).
    pub fn shard_count(&self) -> Option<usize> {
        match self {
            AnyStore::Single(_) => None,
            AnyStore::Sharded(s) => Some(s.shard_count()),
        }
    }

    /// Partitioner name (`None` on the single-store path).
    pub fn partitioner_name(&self) -> Option<&'static str> {
        match self {
            AnyStore::Single(_) => None,
            AnyStore::Sharded(s) => Some(s.partitioner_name()),
        }
    }

    /// Halo radius (`None` on the single-store path).
    pub fn halo(&self) -> Option<usize> {
        match self {
            AnyStore::Single(_) => None,
            AnyStore::Sharded(s) => Some(s.halo()),
        }
    }
}

/// A prepared plan for either store flavor (what the service's plan cache
/// holds).
#[derive(Clone)]
pub enum AnyPlan {
    /// Plan against a single store.
    Single(Arc<QueryPlan>),
    /// Plan against a sharded store.
    Sharded(Arc<ShardedPlan>),
}

impl AnyPlan {
    /// The engine the plan was prepared for.
    pub fn kind(&self) -> EngineKind {
        match self {
            AnyPlan::Single(p) => p.kind(),
            AnyPlan::Sharded(p) => p.kind(),
        }
    }

    /// The projected variable names, in output order.
    pub fn projected_variables(&self) -> &[String] {
        match self {
            AnyPlan::Single(p) => p.projected_variables(),
            AnyPlan::Sharded(p) => p.projected_variables(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use turbohom_rdf::vocab;

    fn ub(l: &str) -> String {
        format!("http://ub.org/{l}")
    }

    /// A dataset with enough structure to exercise routing, pruning and
    /// halo replication: students in two departments of one university.
    fn sample_dataset() -> Dataset {
        let mut ds = Dataset::new();
        ds.insert_iris(
            &ub("GraduateStudent"),
            vocab::RDFS_SUBCLASSOF,
            &ub("Student"),
        );
        for d in 0..2 {
            let dept = ub(&format!("dept{d}"));
            ds.insert_iris(&dept, vocab::RDF_TYPE, &ub("Department"));
            ds.insert_iris(&dept, &ub("subOrganizationOf"), &ub("univ0"));
            for i in 0..5 {
                let s = ub(&format!("student{d}_{i}"));
                ds.insert_iris(&s, vocab::RDF_TYPE, &ub("GraduateStudent"));
                ds.insert_iris(&s, &ub("memberOf"), &dept);
            }
        }
        ds.insert_iris(&ub("univ0"), vocab::RDF_TYPE, &ub("University"));
        ds
    }

    fn single_store() -> Store {
        Store::from_dataset_with(
            sample_dataset(),
            StoreOptions {
                inference: true,
                threads: 1,
            },
        )
    }

    fn sharded(shards: usize, partitioner: PartitionerKind) -> ShardedStore {
        ShardedStore::from_dataset_with(
            sample_dataset(),
            ShardedOptions {
                shards,
                inference: true,
                threads: 1,
                partitioner,
                halo: DEFAULT_HALO,
            },
        )
        .unwrap()
    }

    const QUERIES: &[&str] = &[
        // Variable anchor, every student.
        r#"PREFIX rdf: <http://www.w3.org/1999/02/22-rdf-syntax-ns#>
           PREFIX ub: <http://ub.org/>
           SELECT ?x ?d WHERE { ?x rdf:type ub:Student . ?x ub:memberOf ?d . }"#,
        // Constant anchor (dept0) — routes to one shard.
        r#"PREFIX ub: <http://ub.org/>
           SELECT ?x WHERE { ?x ub:memberOf <http://ub.org/dept0> . }"#,
        // Triangle through the university.
        r#"PREFIX rdf: <http://www.w3.org/1999/02/22-rdf-syntax-ns#>
           PREFIX ub: <http://ub.org/>
           SELECT ?x ?d ?u WHERE {
             ?x ub:memberOf ?d . ?d ub:subOrganizationOf ?u .
             ?u rdf:type ub:University . }"#,
        // Anchor variable not projected.
        r#"PREFIX ub: <http://ub.org/>
           SELECT ?d WHERE { ?x ub:memberOf ?d . }"#,
        // OPTIONAL rides along.
        r#"PREFIX rdf: <http://www.w3.org/1999/02/22-rdf-syntax-ns#>
           PREFIX ub: <http://ub.org/>
           SELECT ?d ?u WHERE {
             ?d rdf:type ub:Department .
             OPTIONAL { ?d ub:subOrganizationOf ?u . } }"#,
    ];

    #[test]
    fn sharded_results_are_byte_identical_to_single_store() {
        let single = single_store();
        for partitioner in [PartitionerKind::Hash, PartitionerKind::Greedy] {
            for k in [1, 3, 4] {
                let sharded = sharded(k, partitioner);
                for q in QUERIES {
                    for kind in EngineKind::all() {
                        let expect = single.execute(q, kind).unwrap();
                        let got = sharded.execute(q, kind).unwrap();
                        assert_eq!(
                            got.to_sparql_json(),
                            expect.to_sparql_json(),
                            "k={k} {partitioner:?} {kind} {q}"
                        );
                    }
                }
            }
        }
    }

    #[test]
    fn constant_anchor_routes_to_a_single_shard() {
        let sharded = sharded(4, PartitionerKind::Hash);
        let plan = sharded
            .prepare_plan(QUERIES[1], EngineKind::TurboHomPlusPlus)
            .unwrap();
        assert!(matches!(plan.anchor(), Anchor::Constant(_)));
        assert!(plan.live_shards().len() <= 1);
        assert!(plan.pruned_shards() >= 3);
        let r = sharded.run_plan(&plan).unwrap();
        assert_eq!(r.len(), 5);
        assert_eq!(r.stats.shards_pruned, plan.pruned_shards());
        assert_eq!(r.stats.shards_executed, plan.live_shards().len());
    }

    #[test]
    fn summary_pruning_skips_shards_without_the_constants() {
        let sharded = sharded(4, PartitionerKind::Hash);
        // A predicate absent everywhere: every shard is pruned, the result
        // is empty without executing anything.
        let q = r#"PREFIX ub: <http://ub.org/>
                   SELECT ?x WHERE { ?x ub:nonexistent ?y . }"#;
        let plan = sharded
            .prepare_plan(q, EngineKind::TurboHomPlusPlus)
            .unwrap();
        assert!(plan.live_shards().is_empty());
        assert_eq!(plan.pruned_shards(), 4);
        let r = sharded.run_plan(&plan).unwrap();
        assert!(r.rows.is_empty());
        assert_eq!(r.stats.shards_pruned, 4);
    }

    #[test]
    fn union_and_disconnected_queries_are_not_shardable() {
        let sharded = sharded(2, PartitionerKind::Hash);
        let union = r#"PREFIX rdf: <http://www.w3.org/1999/02/22-rdf-syntax-ns#>
                       PREFIX ub: <http://ub.org/>
                       SELECT ?x WHERE {
                         { ?x rdf:type ub:Department . } UNION { ?x rdf:type ub:University . } }"#;
        assert!(matches!(
            sharded.execute(union, EngineKind::TurboHomPlusPlus),
            Err(StoreError::NotShardable(_))
        ));
        let disconnected = r#"PREFIX ub: <http://ub.org/>
                              SELECT ?a ?b WHERE {
                                ?a ub:memberOf <http://ub.org/dept0> .
                                ?b ub:memberOf <http://ub.org/dept1> . }"#;
        assert!(matches!(
            sharded.execute(disconnected, EngineKind::TurboHomPlusPlus),
            Err(StoreError::NotShardable(_))
        ));
    }

    #[test]
    fn limit_applies_after_the_merge() {
        let single = single_store();
        let sharded = sharded(3, PartitionerKind::Hash);
        let q = format!("{} LIMIT 4", QUERIES[0]);
        let r = sharded.execute(&q, EngineKind::TurboHomPlusPlus).unwrap();
        assert_eq!(r.rows.len(), 4);
        // The sharded rows are the 4 smallest in canonical order — a valid
        // LIMIT answer, and a deterministic one.
        let mut all = single
            .execute(QUERIES[0], EngineKind::TurboHomPlusPlus)
            .unwrap();
        all.rows.truncate(4);
        assert_eq!(r.rows, all.rows);
    }

    #[test]
    fn sharded_traces_record_fanout_merge_and_rollups() {
        let sharded = sharded(3, PartitionerKind::Hash);
        let trace = Trace::new(7);
        let plan = sharded
            .prepare_plan_traced(QUERIES[0], EngineKind::TurboHomPlusPlus, &trace)
            .unwrap();
        sharded.run_plan_traced(&plan, None, &trace).unwrap();
        let report = trace.finish();
        let names: Vec<_> = report
            .spans
            .iter()
            .filter(|s| s.parent.is_none())
            .map(|s| s.name)
            .collect();
        assert_eq!(names, ["parse", "summary_prune", "transform", "execute"]);
        let execute = report.spans.iter().find(|s| s.name == "execute").unwrap();
        for child in ["shard_fanout", "merge"] {
            let s = report.spans.iter().find(|s| s.name == child).unwrap();
            assert_eq!(s.parent, Some(execute.id));
        }
        let rollups: Vec<_> = report
            .spans
            .iter()
            .filter(|s| s.name == "shard_execute")
            .collect();
        assert_eq!(rollups.len(), plan.live_shards().len());
        assert!(rollups.iter().all(|s| s.parent == Some(execute.id)));
        let prune = report
            .spans
            .iter()
            .find(|s| s.name == "summary_prune")
            .unwrap();
        assert!(prune.counters.iter().any(|(n, _)| *n == "live"));
        assert!(prune.counters.iter().any(|(n, _)| *n == "pruned"));
    }

    #[test]
    fn snapshot_manifest_round_trip() {
        let dir = std::env::temp_dir().join(format!("turbohom-shard-test-{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        let base = dir.join("sample.shards");
        let built = sharded(3, PartitionerKind::Greedy);
        built.save_snapshots(&base).unwrap();
        assert!(ShardedStore::is_manifest(&base));
        assert!(!ShardedStore::is_manifest(
            &base.with_file_name("sample.shards.shard0.snap")
        ));

        let booted = ShardedStore::from_manifest(&base, 1).unwrap();
        assert_eq!(booted.shard_count(), 3);
        assert_eq!(booted.partitioner_name(), "greedy");
        assert_eq!(booted.triple_count(), built.triple_count());
        assert_eq!(booted.backend_name(), "sharded-snapshot");
        assert!(booted.is_mapped());
        for q in QUERIES {
            let a = built.execute(q, EngineKind::TurboHomPlusPlus).unwrap();
            let b = booted.execute(q, EngineKind::TurboHomPlusPlus).unwrap();
            assert_eq!(a.to_sparql_json(), b.to_sparql_json());
        }
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn any_store_dispatches_both_flavors() {
        let single = AnyStore::Single(Arc::new(single_store()));
        let sharded_store = AnyStore::Sharded(Arc::new(sharded(2, PartitionerKind::Hash)));
        assert_eq!(single.shard_count(), None);
        assert_eq!(sharded_store.shard_count(), Some(2));
        assert_eq!(sharded_store.partitioner_name(), Some("hash"));
        assert_eq!(sharded_store.halo(), Some(DEFAULT_HALO));
        assert_eq!(sharded_store.backend_name(), "sharded-heap");
        assert_eq!(single.triple_count(), sharded_store.triple_count());
        let trace = Trace::disabled();
        let mut bodies = Vec::new();
        for store in [&single, &sharded_store] {
            let plan = store
                .prepare_plan_traced(QUERIES[0], EngineKind::TurboHomPlusPlus, &trace)
                .unwrap();
            assert_eq!(plan.kind(), EngineKind::TurboHomPlusPlus);
            assert_eq!(plan.projected_variables(), ["x", "d"]);
            let r = store.run_plan_traced(&plan, None, &trace).unwrap();
            bodies.push(r.to_sparql_json());
        }
        assert_eq!(bodies[0], bodies[1]);
    }
}
