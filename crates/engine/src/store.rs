//! The [`Store`]: one RDF dataset plus every derived structure the engines
//! need, and the uniform query entry point.

use crate::backend::{self, HeapBackend, SnapshotBackend, StorageBackend};
use crate::error::StoreError;
use crate::plan::QueryPlan;
use crate::results::{QueryResults, ResultRow};
use std::fmt;
use std::path::Path;
use std::sync::atomic::{AtomicU64, Ordering};
use std::time::Instant;
use turbohom_baseline::{HashJoinEngine, JoinStrategy, MergeJoinEngine, PermutationIndexes};
use turbohom_core::{MatchResult, TurboHomConfig};
use turbohom_rdf::{parse_ntriples, Dataset, Term};
use turbohom_sparql::{parse_query, GroupPattern, Query, SparqlTerm};
use turbohom_trace::{Trace, TraceReport};
use turbohom_transform::{transform_query, TransformError, TransformedGraph, TransformedQuery};

/// Which execution engine to use for a query.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum EngineKind {
    /// The paper's contribution: e-graph homomorphism matching over the
    /// type-aware transformed graph with all optimizations
    /// (+INT, −NLF, −DEG, +REUSE).
    TurboHomPlusPlus,
    /// The unoptimized port of TurboISO over the direct transformation
    /// (the paper's "TurboHOM", Figure 6 / Table 7 baseline).
    TurboHom,
    /// RDF-3X-style baseline: six permutation indexes + sort-merge joins.
    MergeJoin,
    /// TripleBit / System-X stand-in: predicate scans + hash joins.
    HashJoin,
}

impl EngineKind {
    /// Number of engine kinds (the length of [`EngineKind::all`]; sizes the
    /// per-engine metric arrays, so a new variant cannot silently outgrow
    /// them).
    pub const COUNT: usize = 4;

    /// All engine kinds, in the order the experiment tables list them.
    pub fn all() -> [EngineKind; Self::COUNT] {
        [
            EngineKind::TurboHomPlusPlus,
            EngineKind::TurboHom,
            EngineKind::MergeJoin,
            EngineKind::HashJoin,
        ]
    }

    /// Human-readable label used by the experiment harness.
    pub fn label(&self) -> &'static str {
        match self {
            EngineKind::TurboHomPlusPlus => "TurboHOM++",
            EngineKind::TurboHom => "TurboHOM (direct)",
            EngineKind::MergeJoin => "MergeJoin (RDF-3X-like)",
            EngineKind::HashJoin => "HashJoin (System-Y)",
        }
    }

    /// Short machine-readable name: what [`Display`](fmt::Display) prints and
    /// what [`FromStr`](std::str::FromStr) accepts (among other aliases).
    pub fn name(&self) -> &'static str {
        match self {
            EngineKind::TurboHomPlusPlus => "turbohom++",
            EngineKind::TurboHom => "turbohom",
            EngineKind::MergeJoin => "mergejoin",
            EngineKind::HashJoin => "hashjoin",
        }
    }

    /// The position of this kind in [`EngineKind::all`] (used to index
    /// per-engine metric arrays).
    pub fn index(&self) -> usize {
        Self::all()
            .iter()
            .position(|k| k == self)
            .expect("all() covers every kind")
    }
}

impl fmt::Display for EngineKind {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.name())
    }
}

/// Error returned when an engine name cannot be parsed.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ParseEngineKindError {
    input: String,
}

impl fmt::Display for ParseEngineKindError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "unknown engine `{}` (expected one of: turbohom++, turbohom, mergejoin, hashjoin)",
            self.input
        )
    }
}

impl std::error::Error for ParseEngineKindError {}

impl std::str::FromStr for EngineKind {
    type Err = ParseEngineKindError;

    /// Parses an engine name case-insensitively, ignoring `-`, `_`, spaces
    /// and parentheses so the experiment-table labels round-trip too.
    fn from_str(s: &str) -> Result<Self, Self::Err> {
        let key: String = s
            .chars()
            .filter(|c| c.is_ascii_alphanumeric() || *c == '+')
            .map(|c| c.to_ascii_lowercase())
            .collect();
        match key.as_str() {
            "turbohom++" | "turbohomplusplus" => Ok(EngineKind::TurboHomPlusPlus),
            "turbohom" | "turbohomdirect" => Ok(EngineKind::TurboHom),
            "mergejoin" | "mergejoinrdf3xlike" | "sortmerge" | "rdf3x" => Ok(EngineKind::MergeJoin),
            "hashjoin" | "hashjoinsystemy" | "hash" => Ok(EngineKind::HashJoin),
            _ => Err(ParseEngineKindError { input: s.into() }),
        }
    }
}

/// Construction options for a [`Store`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct StoreOptions {
    /// Materialize the RDFS closure (subClassOf/subPropertyOf/domain/range)
    /// before building the graphs — the paper's LUBM loading protocol.
    pub inference: bool,
    /// Number of worker threads used by the TurboHOM++ engine.
    pub threads: usize,
}

impl Default for StoreOptions {
    fn default() -> Self {
        StoreOptions {
            inference: false,
            threads: 1,
        }
    }
}

/// An RDF store with all engine-specific structures materialized.
///
/// The data lives behind a [`StorageBackend`]: either owned heap memory
/// (built from parsed triples) or zero-copy views into a memory-mapped
/// snapshot file (see [`Store::from_snapshot`]). A `Store` is immutable
/// after construction and `Send + Sync`: services share one behind an `Arc`
/// across worker threads (see the `turbohom-service` crate).
pub struct Store {
    backend: Box<dyn StorageBackend>,
    options: StoreOptions,
}

impl fmt::Debug for Store {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("Store")
            .field("backend", &self.backend.name())
            .field("snapshot_path", &self.backend.snapshot_path())
            .field("triples", &self.triple_count())
            .field("options", &self.options)
            .finish()
    }
}

impl Store {
    /// Builds a store from an already encoded dataset with default options.
    pub fn from_dataset(dataset: Dataset) -> Self {
        Self::from_dataset_with(dataset, StoreOptions::default())
    }

    /// Builds a store from an already encoded dataset.
    pub fn from_dataset_with(dataset: Dataset, options: StoreOptions) -> Self {
        Store {
            backend: Box::new(HeapBackend::from_dataset(dataset, options.inference)),
            options,
        }
    }

    /// Parses an N-Triples document and builds a store with default options.
    pub fn from_ntriples(input: &str) -> Result<Self, StoreError> {
        Ok(Self::from_dataset(parse_ntriples(input)?))
    }

    /// Parses an N-Triples document and builds a store.
    pub fn from_ntriples_with(input: &str, options: StoreOptions) -> Result<Self, StoreError> {
        Ok(Self::from_dataset_with(parse_ntriples(input)?, options))
    }

    /// Opens a snapshot file written by [`save_snapshot`](Self::save_snapshot)
    /// and serves every read path from zero-copy views into it (memory-mapped
    /// where the platform allows, a buffered read otherwise). The inference
    /// flag is recovered from the snapshot; the worker-thread count is a
    /// runtime option and defaults to 1.
    pub fn from_snapshot(path: &Path) -> Result<Self, StoreError> {
        Self::from_snapshot_with(path, 1)
    }

    /// Like [`from_snapshot`](Self::from_snapshot) with an explicit
    /// worker-thread count.
    pub fn from_snapshot_with(path: &Path, threads: usize) -> Result<Self, StoreError> {
        if threads == 0 {
            return Err(StoreError::InvalidThreadCount(0));
        }
        let backend = SnapshotBackend::open(path)?;
        let options = backend.options(threads);
        Ok(Store {
            backend: Box::new(backend),
            options,
        })
    }

    /// Writes the store's full contents (dictionary, triples, both
    /// transformed graphs with their indexes, the six permutation indexes)
    /// to a versioned, checksummed snapshot file that
    /// [`from_snapshot`](Self::from_snapshot) reads back without copying.
    /// Returns the number of bytes written.
    pub fn save_snapshot(&self, path: &Path) -> Result<u64, StoreError> {
        backend::save_snapshot(self.backend.as_ref(), self.options.inference, path)
    }

    /// The backend serving this store (`"heap"` or `"snapshot"`).
    pub fn backend_name(&self) -> &'static str {
        self.backend.name()
    }

    /// The snapshot file backing this store, if any.
    pub fn snapshot_path(&self) -> Option<&Path> {
        self.backend.snapshot_path()
    }

    /// `true` when the store reads from a memory-mapped snapshot.
    pub fn is_mapped(&self) -> bool {
        self.backend.is_mapped()
    }

    /// The underlying dataset.
    pub fn dataset(&self) -> &Dataset {
        self.backend.dataset()
    }

    /// Number of triples loaded (after inference, if enabled).
    pub fn triple_count(&self) -> usize {
        self.backend.dataset().len()
    }

    /// The type-aware transformed graph (Section 4.1).
    pub fn type_aware_graph(&self) -> &TransformedGraph {
        self.backend.type_aware()
    }

    /// The direct transformed graph (Section 3.2).
    pub fn direct_graph(&self) -> &TransformedGraph {
        self.backend.direct()
    }

    /// The six permutation indexes (the join baselines' storage).
    pub(crate) fn permutations(&self) -> &PermutationIndexes {
        self.backend.permutations()
    }

    /// The construction options.
    pub fn options(&self) -> &StoreOptions {
        &self.options
    }

    /// The TurboHOM++ configuration this store uses by default.
    pub fn default_config(&self) -> TurboHomConfig {
        TurboHomConfig::turbohom_plus_plus().with_threads(self.options.threads)
    }

    /// Parses a SPARQL query once so it can be executed repeatedly.
    pub fn prepare(&self, sparql: &str) -> Result<PreparedQuery<'_>, StoreError> {
        Ok(PreparedQuery {
            store: self,
            query: parse_query(sparql)?,
        })
    }

    /// Parses and executes a SPARQL query with the chosen engine.
    ///
    /// This is sugar for [`prepare_plan`](Self::prepare_plan) followed by
    /// [`run_plan`](Self::run_plan); callers that execute the same query
    /// repeatedly should keep (or cache) the plan instead.
    pub fn execute(&self, sparql: &str, kind: EngineKind) -> Result<QueryResults, StoreError> {
        self.run_plan(&self.prepare_plan(sparql, kind)?)
    }

    /// Like [`execute`](Self::execute), but overriding the number of worker
    /// threads for this request only (the store-level
    /// [`StoreOptions::threads`] remains the default).
    pub fn execute_with_threads(
        &self,
        sparql: &str,
        kind: EngineKind,
        threads: Option<usize>,
    ) -> Result<QueryResults, StoreError> {
        self.run_plan_with(&self.prepare_plan(sparql, kind)?, threads)
    }

    /// Executes a query with full profiling: every pipeline stage (`parse`,
    /// `transform`, `execute`) is timed, and the matching engine records
    /// fine-grained child spans (`candidate_regions`, `matching_order`,
    /// `enumeration`, one `worker` span per thread) with their
    /// [`MatchStats`] counters attached. The embedded-API counterpart of the
    /// HTTP server's `profile=1` mode.
    ///
    /// Trace ids are assigned from a process-wide counter so concurrent
    /// callers get distinct ids.
    pub fn execute_traced(
        &self,
        sparql: &str,
        kind: EngineKind,
    ) -> Result<(QueryResults, TraceReport), StoreError> {
        static NEXT_TRACE_ID: AtomicU64 = AtomicU64::new(1);
        let trace = Trace::detailed(NEXT_TRACE_ID.fetch_add(1, Ordering::Relaxed));
        let plan = self.prepare_plan_traced(sparql, kind, &trace)?;
        let results = self.run_plan_traced(&plan, None, &trace)?;
        Ok((results, trace.finish()))
    }

    /// Executes with an explicit TurboHOM configuration (used by the
    /// optimization-ablation and parallel-speed-up experiments).
    /// `force_direct` runs over the direct transformation regardless of the
    /// query shape.
    pub fn execute_turbohom(
        &self,
        sparql: &str,
        config: TurboHomConfig,
        force_direct: bool,
    ) -> Result<QueryResults, StoreError> {
        let query = parse_query(sparql)?;
        let branches = self.plan_branches(&query, force_direct)?;
        self.run_graph_plan(&branches, config, query.projected_variables())
    }

    // ---- internal execution paths -------------------------------------

    /// Transforms one union-free branch, falling back to the direct graph
    /// when the type-aware transformation cannot express the query.
    pub(crate) fn transform_branch(
        &self,
        branch: &GroupPattern,
        use_direct: bool,
    ) -> Result<(&TransformedGraph, TransformedQuery), StoreError> {
        let dictionary = &self.dataset().dictionary;
        if use_direct {
            let tq = transform_query(branch, self.direct_graph(), dictionary)?;
            return Ok((self.direct_graph(), tq));
        }
        match transform_query(branch, self.type_aware_graph(), dictionary) {
            Ok(tq) => Ok((self.type_aware_graph(), tq)),
            Err(
                TransformError::VariableTypeUnsupported
                | TransformError::VariableSubclassUnsupported,
            ) => {
                let tq = transform_query(branch, self.direct_graph(), dictionary)?;
                Ok((self.direct_graph(), tq))
            }
            Err(e) => Err(e.into()),
        }
    }

    /// Converts matcher solutions into term rows over the projected variables.
    pub(crate) fn append_rows(
        &self,
        rows: &mut Vec<ResultRow>,
        graph: &TransformedGraph,
        query: &TransformedQuery,
        result: &MatchResult,
        projected: &[String],
    ) {
        // Pre-resolve where every projected variable lives.
        enum Slot {
            Vertex(usize),
            Edge(usize),
            Absent,
        }
        let slots: Vec<Slot> = projected
            .iter()
            .map(|var| {
                if let Some(u) = query.graph.vertex_of_variable(var) {
                    Slot::Vertex(u)
                } else if let Some(e) = query
                    .graph
                    .edges()
                    .iter()
                    .position(|e| e.variable.as_deref() == Some(var))
                {
                    Slot::Edge(e)
                } else {
                    Slot::Absent
                }
            })
            .collect();
        for solution in &result.solutions {
            let row: ResultRow = slots
                .iter()
                .map(|slot| match slot {
                    Slot::Vertex(u) => solution.vertices[*u]
                        .and_then(|v| graph.mappings.term_of_vertex(v))
                        .and_then(|tid| self.dataset().dictionary.term(tid)),
                    Slot::Edge(e) => solution.edge_labels[*e]
                        .and_then(|el| graph.mappings.term_of_elabel(el))
                        .and_then(|tid| self.dataset().dictionary.term(tid)),
                    Slot::Absent => None,
                })
                .collect();
            rows.push(row);
        }
    }

    pub(crate) fn run_baseline(&self, query: &Query, strategy: JoinStrategy) -> QueryResults {
        let projected = query.projected_variables();
        let start = Instant::now();
        let engine = match strategy {
            JoinStrategy::SortMerge => MergeJoinEngine::new(self.dataset(), self.permutations()),
            JoinStrategy::Hash => HashJoinEngine::new(self.dataset(), self.permutations()),
        };
        let (relation, _stats) = engine.execute(query);
        let columns: Vec<Option<usize>> = projected.iter().map(|v| relation.column(v)).collect();
        let rows: Vec<ResultRow> = relation
            .rows
            .iter()
            .map(|row| {
                columns
                    .iter()
                    .map(|col| {
                        col.and_then(|i| row[i])
                            .and_then(|tid| self.dataset().dictionary.term(tid))
                    })
                    .collect()
            })
            .collect();
        QueryResults {
            variables: projected,
            solution_count: rows.len(),
            rows,
            elapsed: start.elapsed(),
            ..Default::default()
        }
    }

    /// Renders a term for display (used by the examples).
    pub fn render(&self, term: &Term) -> String {
        term.to_string()
    }
}

/// A parsed query bound to a store.
pub struct PreparedQuery<'s> {
    store: &'s Store,
    query: Query,
}

impl<'s> PreparedQuery<'s> {
    /// The parsed query.
    pub fn query(&self) -> &Query {
        &self.query
    }

    /// Builds the full execution plan for the chosen engine.
    pub fn plan(&self, kind: EngineKind) -> Result<QueryPlan, StoreError> {
        self.store.plan_query(&self.query, kind)
    }

    /// Executes the query with the chosen engine. This builds (and discards)
    /// a plan so every engine gets the plan-level treatment — in particular
    /// the `LIMIT` pushdown; callers executing repeatedly should hold a
    /// [`plan`](Self::plan) instead.
    pub fn execute(&self, kind: EngineKind) -> Result<QueryResults, StoreError> {
        self.store.run_plan(&self.plan(kind)?)
    }
}

/// Returns `true` if the branch contains a variable in predicate position
/// (anywhere, including OPTIONAL clauses). Such queries must run over the
/// direct transformation: in the type-aware graph the `rdf:type` edges no
/// longer exist, so a variable predicate would silently miss them.
pub(crate) fn branch_needs_direct(branch: &GroupPattern) -> bool {
    branch
        .triples
        .iter()
        .any(|t| matches!(t.predicate, SparqlTerm::Variable(_)))
        || branch.optionals.iter().any(branch_needs_direct)
        || branch.unions.iter().flatten().any(branch_needs_direct)
}

/// All FILTER expressions of a branch, including those inside OPTIONALs
/// (used when the branch is evaluated component-wise at the store level).
pub(crate) fn collect_filters(branch: &GroupPattern) -> Vec<turbohom_sparql::Expression> {
    let mut out = branch.filters.clone();
    for opt in &branch.optionals {
        out.extend(collect_filters(opt));
    }
    out
}

/// Splits a union-free branch into the connected components of its required
/// basic graph pattern. Variables *and* constants connect patterns (they map
/// to shared query vertices). OPTIONAL clauses are attached to the first
/// component they share a variable with; FILTERs are deliberately dropped —
/// the caller re-applies them after combining the component results.
pub(crate) fn split_components(branch: &GroupPattern) -> Vec<GroupPattern> {
    if branch.triples.len() <= 1 {
        return vec![branch.clone()];
    }
    // Union-find over the term keys of the required triples.
    let mut keys: Vec<String> = Vec::new();
    let mut parents: Vec<usize> = Vec::new();
    fn find(parents: &mut [usize], mut x: usize) -> usize {
        while parents[x] != x {
            parents[x] = parents[parents[x]];
            x = parents[x];
        }
        x
    }
    let key_index = |keys: &mut Vec<String>, parents: &mut Vec<usize>, key: String| -> usize {
        match keys.iter().position(|k| *k == key) {
            Some(i) => i,
            None => {
                keys.push(key);
                parents.push(parents.len());
                parents.len() - 1
            }
        }
    };
    let term_key = |t: &SparqlTerm| match t {
        SparqlTerm::Variable(v) => format!("?{v}"),
        SparqlTerm::Constant(c) => c.to_string(),
    };
    let mut triple_roots: Vec<usize> = Vec::with_capacity(branch.triples.len());
    for triple in &branch.triples {
        let mut nodes = vec![
            key_index(&mut keys, &mut parents, term_key(&triple.subject)),
            key_index(&mut keys, &mut parents, term_key(&triple.object)),
        ];
        if triple.predicate.is_variable() {
            nodes.push(key_index(
                &mut keys,
                &mut parents,
                term_key(&triple.predicate),
            ));
        }
        let root = find(&mut parents, nodes[0]);
        for &n in &nodes[1..] {
            let r = find(&mut parents, n);
            parents[r] = root;
        }
        triple_roots.push(root);
    }
    // Normalize roots after all unions.
    let roots: Vec<usize> = triple_roots
        .iter()
        .map(|&r| find(&mut parents, r))
        .collect();
    let mut distinct_roots: Vec<usize> = roots.clone();
    distinct_roots.sort_unstable();
    distinct_roots.dedup();
    if distinct_roots.len() <= 1 {
        return vec![branch.clone()];
    }
    let mut components: Vec<GroupPattern> =
        distinct_roots.iter().map(|_| GroupPattern::new()).collect();
    for (triple, root) in branch.triples.iter().zip(&roots) {
        let idx = distinct_roots
            .iter()
            .position(|r| r == root)
            .expect("root present");
        components[idx].triples.push(triple.clone());
    }
    // Attach each OPTIONAL to the first component sharing a variable.
    for opt in &branch.optionals {
        let opt_vars = opt.all_variables();
        let target = components
            .iter()
            .position(|c| {
                let vars = c.all_variables();
                opt_vars.iter().any(|v| vars.contains(v))
            })
            .unwrap_or(0);
        components[target].optionals.push(opt.clone());
    }
    components
}

#[cfg(test)]
mod tests {
    use super::*;
    use turbohom_rdf::vocab;

    fn ub(l: &str) -> String {
        format!("http://ub.org/{l}")
    }

    fn sample_store() -> Store {
        let mut ds = Dataset::new();
        ds.insert_iris(
            &ub("GraduateStudent"),
            vocab::RDFS_SUBCLASSOF,
            &ub("Student"),
        );
        for i in 0..3 {
            let s = ub(&format!("student{i}"));
            ds.insert_iris(&s, vocab::RDF_TYPE, &ub("GraduateStudent"));
            ds.insert_iris(&s, &ub("memberOf"), &ub("dept0"));
        }
        ds.insert_iris(&ub("dept0"), vocab::RDF_TYPE, &ub("Department"));
        ds.insert_iris(&ub("dept0"), &ub("subOrganizationOf"), &ub("univ0"));
        ds.insert_iris(&ub("univ0"), vocab::RDF_TYPE, &ub("University"));
        Store::from_dataset_with(
            ds,
            StoreOptions {
                inference: true,
                threads: 1,
            },
        )
    }

    #[test]
    fn all_engines_agree_on_a_bgp() {
        let store = sample_store();
        let q = r#"PREFIX rdf: <http://www.w3.org/1999/02/22-rdf-syntax-ns#>
                   PREFIX ub: <http://ub.org/>
                   SELECT ?x ?d WHERE { ?x rdf:type ub:Student . ?x ub:memberOf ?d . }"#;
        let mut counts = Vec::new();
        for kind in EngineKind::all() {
            let r = store.execute(q, kind).unwrap();
            counts.push(r.len());
            assert_eq!(r.variables, vec!["x", "d"]);
        }
        assert!(counts.iter().all(|&c| c == 3), "{counts:?}");
    }

    #[test]
    fn inference_option_materializes_superclass_types() {
        let store = sample_store();
        // Without inference the Student class has no direct instances.
        let q = r#"PREFIX rdf: <http://www.w3.org/1999/02/22-rdf-syntax-ns#>
                   PREFIX ub: <http://ub.org/>
                   SELECT ?x WHERE { ?x rdf:type ub:Student . }"#;
        assert_eq!(
            store
                .execute(q, EngineKind::TurboHomPlusPlus)
                .unwrap()
                .len(),
            3
        );
        assert_eq!(store.execute(q, EngineKind::MergeJoin).unwrap().len(), 3);
    }

    #[test]
    fn from_ntriples_round_trip() {
        let nt = r#"
<http://ex.org/a> <http://www.w3.org/1999/02/22-rdf-syntax-ns#type> <http://ex.org/T> .
<http://ex.org/a> <http://ex.org/p> "42"^^<http://www.w3.org/2001/XMLSchema#integer> .
"#;
        let store = Store::from_ntriples(nt).unwrap();
        assert_eq!(store.triple_count(), 2);
        let r = store
            .execute(
                "SELECT ?v WHERE { <http://ex.org/a> <http://ex.org/p> ?v . }",
                EngineKind::TurboHomPlusPlus,
            )
            .unwrap();
        assert_eq!(r.len(), 1);
        assert_eq!(r.column("v")[0].as_integer(), Some(42));
    }

    #[test]
    fn variable_predicate_falls_back_to_direct_graph() {
        let store = sample_store();
        let q = "SELECT ?p ?o WHERE { <http://ub.org/student0> ?p ?o . }";
        let graph = store.execute(q, EngineKind::TurboHomPlusPlus).unwrap();
        let join = store.execute(q, EngineKind::MergeJoin).unwrap();
        // Both must see the rdf:type triples (2 after inference) + memberOf.
        assert_eq!(graph.len(), join.len());
        assert_eq!(graph.len(), 3);
    }

    #[test]
    fn prepared_query_is_reusable() {
        let store = sample_store();
        let prepared = store
            .prepare(
                r#"PREFIX ub: <http://ub.org/>
                   SELECT ?x WHERE { ?x ub:memberOf <http://ub.org/dept0> . }"#,
            )
            .unwrap();
        let a = prepared.execute(EngineKind::TurboHomPlusPlus).unwrap();
        let b = prepared.execute(EngineKind::HashJoin).unwrap();
        assert_eq!(a.len(), b.len());
        assert_eq!(a.len(), 3);
        assert!(a.elapsed >= std::time::Duration::ZERO);
    }

    #[test]
    fn parse_errors_are_reported() {
        let store = sample_store();
        assert!(matches!(
            store.execute("SELECT WHERE", EngineKind::TurboHomPlusPlus),
            Err(StoreError::Sparql(_))
        ));
        assert!(Store::from_ntriples("not ntriples").is_err());
    }

    #[test]
    fn execute_turbohom_with_custom_config() {
        let store = sample_store();
        let q = r#"PREFIX rdf: <http://www.w3.org/1999/02/22-rdf-syntax-ns#>
                   PREFIX ub: <http://ub.org/>
                   SELECT ?x ?y ?z WHERE {
                     ?x rdf:type ub:Student . ?y rdf:type ub:University . ?z rdf:type ub:Department .
                     ?x ub:memberOf ?z . ?z ub:subOrganizationOf ?y . }"#;
        for opts in [
            turbohom_core::Optimizations::all(),
            turbohom_core::Optimizations::none(),
        ] {
            let config = TurboHomConfig::default().with_optimizations(opts);
            for force_direct in [false, true] {
                let r = store.execute_turbohom(q, config, force_direct).unwrap();
                assert_eq!(r.len(), 3, "{opts:?} force_direct={force_direct}");
            }
        }
    }

    #[test]
    fn union_and_optional_work_through_the_store() {
        let store = sample_store();
        let q = r#"PREFIX rdf: <http://www.w3.org/1999/02/22-rdf-syntax-ns#>
                   PREFIX ub: <http://ub.org/>
                   SELECT ?x ?u WHERE {
                     { ?x rdf:type ub:Department . } UNION { ?x rdf:type ub:University . }
                     OPTIONAL { ?x ub:subOrganizationOf ?u . }
                   }"#;
        let a = store.execute(q, EngineKind::TurboHomPlusPlus).unwrap();
        let b = store.execute(q, EngineKind::MergeJoin).unwrap();
        assert_eq!(a.len(), 2);
        assert_eq!(b.len(), 2);
        // dept0 has a parent organization, univ0 does not.
        assert_eq!(a.column("u").len(), 1);
        assert_eq!(b.column("u").len(), 1);
    }

    #[test]
    fn engine_kind_parses_case_insensitively_and_round_trips() {
        for kind in EngineKind::all() {
            // Display → FromStr round trip.
            assert_eq!(kind.to_string().parse::<EngineKind>().unwrap(), kind);
            // The experiment-table labels parse too.
            assert_eq!(kind.label().parse::<EngineKind>().unwrap(), kind);
            // Case and separators do not matter.
            assert_eq!(
                kind.name().to_uppercase().parse::<EngineKind>().unwrap(),
                kind
            );
            assert_eq!(EngineKind::all()[kind.index()], kind);
        }
        assert_eq!(
            "Merge-Join".parse::<EngineKind>().unwrap(),
            EngineKind::MergeJoin
        );
        assert_eq!(
            "TURBOHOM_PLUS_PLUS".parse::<EngineKind>().unwrap(),
            EngineKind::TurboHomPlusPlus
        );
        let err = "sparqlotron".parse::<EngineKind>().unwrap_err();
        assert!(err.to_string().contains("sparqlotron"));
    }

    #[test]
    fn per_request_thread_override_does_not_rebuild_the_store() {
        let store = sample_store();
        let q = r#"PREFIX rdf: <http://www.w3.org/1999/02/22-rdf-syntax-ns#>
                   PREFIX ub: <http://ub.org/>
                   SELECT ?x WHERE { ?x rdf:type ub:Student . }"#;
        // The store was built with threads = 1; the override applies per call.
        assert_eq!(store.options().threads, 1);
        let seq = store.execute(q, EngineKind::TurboHomPlusPlus).unwrap();
        let par = store
            .execute_with_threads(q, EngineKind::TurboHomPlusPlus, Some(4))
            .unwrap();
        assert_eq!(seq.len(), par.len());
        assert_eq!(store.options().threads, 1);
    }

    #[test]
    fn zero_thread_override_is_rejected_not_clamped() {
        let store = sample_store();
        let q = r#"PREFIX rdf: <http://www.w3.org/1999/02/22-rdf-syntax-ns#>
                   PREFIX ub: <http://ub.org/>
                   SELECT ?x WHERE { ?x rdf:type ub:Student . }"#;
        for kind in EngineKind::all() {
            let err = store.execute_with_threads(q, kind, Some(0)).unwrap_err();
            assert!(matches!(err, StoreError::InvalidThreadCount(0)), "{kind}");
        }
        // `None` still means "use the store default".
        assert!(store
            .execute_with_threads(q, EngineKind::TurboHomPlusPlus, None)
            .is_ok());
    }

    #[test]
    fn execute_traced_profiles_every_stage() {
        let store = sample_store();
        let q = r#"PREFIX rdf: <http://www.w3.org/1999/02/22-rdf-syntax-ns#>
                   PREFIX ub: <http://ub.org/>
                   SELECT ?x ?d WHERE { ?x rdf:type ub:Student . ?x ub:memberOf ?d . }"#;
        let (results, report) = store
            .execute_traced(q, EngineKind::TurboHomPlusPlus)
            .unwrap();
        assert_eq!(results.len(), 3);
        assert!(report.trace_id > 0);
        // The pipeline stages appear as roots, in order, and sum to no more
        // than the total traced time.
        let stages = report.stages();
        let names: Vec<_> = stages.iter().map(|(n, _)| *n).collect();
        assert_eq!(names, ["parse", "transform", "execute"]);
        assert!(report.stage_total_ns() <= report.total_ns);
        // The matcher's fine-grained spans hang off the execute span.
        let execute = report.spans.iter().find(|s| s.name == "execute").unwrap();
        for stage in ["candidate_regions", "matching_order", "enumeration"] {
            let span = report
                .spans
                .iter()
                .find(|s| s.name == stage)
                .unwrap_or_else(|| panic!("missing {stage} span"));
            assert_eq!(span.parent, Some(execute.id));
        }
        assert!(execute.counters.contains(&("solutions", 3)));
        // Join baselines only get the coarse pipeline spans.
        let (_, join_report) = store.execute_traced(q, EngineKind::MergeJoin).unwrap();
        assert!(join_report.spans.iter().any(|s| s.name == "execute"));
        assert!(join_report.spans.iter().all(|s| s.name != "enumeration"));
        // Trace ids are distinct across calls.
        assert_ne!(report.trace_id, join_report.trace_id);
        // The profile JSON carries the stage breakdown.
        let json = report.to_json();
        assert!(json.contains("\"stages\":{\"parse\":"));
        assert!(json.contains("\"name\":\"enumeration\""));
    }

    #[test]
    fn graph_accessors_expose_table1_statistics() {
        let store = sample_store();
        let aware = store.type_aware_graph().graph.stats();
        let direct = store.direct_graph().graph.stats();
        assert!(aware.vertices < direct.vertices);
        assert!(aware.edges < direct.edges);
        assert_eq!(store.options().threads, 1);
    }
}
