//! The [`Store`]: one RDF dataset plus every derived structure the engines
//! need, and the uniform query entry point.

use crate::error::StoreError;
use crate::results::{QueryResults, ResultRow};
use std::time::Instant;
use turbohom_baseline::{HashJoinEngine, JoinStrategy, MergeJoinEngine, PermutationIndexes};
use turbohom_core::{MatchResult, TurboHomConfig, TurboHomEngine};
use turbohom_rdf::{parse_ntriples, Dataset, InferenceConfig, InferenceEngine, Term};
use turbohom_sparql::{parse_query, GroupPattern, Query, SparqlTerm};
use turbohom_transform::{
    direct_transform, transform_query, type_aware_transform, TransformError, TransformedGraph,
    TransformedQuery,
};

/// Which execution engine to use for a query.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum EngineKind {
    /// The paper's contribution: e-graph homomorphism matching over the
    /// type-aware transformed graph with all optimizations
    /// (+INT, −NLF, −DEG, +REUSE).
    TurboHomPlusPlus,
    /// The unoptimized port of TurboISO over the direct transformation
    /// (the paper's "TurboHOM", Figure 6 / Table 7 baseline).
    TurboHom,
    /// RDF-3X-style baseline: six permutation indexes + sort-merge joins.
    MergeJoin,
    /// TripleBit / System-X stand-in: predicate scans + hash joins.
    HashJoin,
}

impl EngineKind {
    /// All engine kinds, in the order the experiment tables list them.
    pub fn all() -> [EngineKind; 4] {
        [
            EngineKind::TurboHomPlusPlus,
            EngineKind::TurboHom,
            EngineKind::MergeJoin,
            EngineKind::HashJoin,
        ]
    }

    /// Human-readable label used by the experiment harness.
    pub fn label(&self) -> &'static str {
        match self {
            EngineKind::TurboHomPlusPlus => "TurboHOM++",
            EngineKind::TurboHom => "TurboHOM (direct)",
            EngineKind::MergeJoin => "MergeJoin (RDF-3X-like)",
            EngineKind::HashJoin => "HashJoin (System-Y)",
        }
    }
}

/// Construction options for a [`Store`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct StoreOptions {
    /// Materialize the RDFS closure (subClassOf/subPropertyOf/domain/range)
    /// before building the graphs — the paper's LUBM loading protocol.
    pub inference: bool,
    /// Number of worker threads used by the TurboHOM++ engine.
    pub threads: usize,
}

impl Default for StoreOptions {
    fn default() -> Self {
        StoreOptions {
            inference: false,
            threads: 1,
        }
    }
}

/// An in-memory RDF store with all engine-specific structures materialized.
pub struct Store {
    dataset: Dataset,
    type_aware: TransformedGraph,
    direct: TransformedGraph,
    permutations: PermutationIndexes,
    options: StoreOptions,
}

impl Store {
    /// Builds a store from an already encoded dataset with default options.
    pub fn from_dataset(dataset: Dataset) -> Self {
        Self::from_dataset_with(dataset, StoreOptions::default())
    }

    /// Builds a store from an already encoded dataset.
    pub fn from_dataset_with(mut dataset: Dataset, options: StoreOptions) -> Self {
        if options.inference {
            InferenceEngine::new(InferenceConfig::full()).materialize(&mut dataset);
        }
        let type_aware = type_aware_transform(&dataset);
        let direct = direct_transform(&dataset);
        let permutations = PermutationIndexes::build(&dataset);
        Store {
            dataset,
            type_aware,
            direct,
            permutations,
            options,
        }
    }

    /// Parses an N-Triples document and builds a store with default options.
    pub fn from_ntriples(input: &str) -> Result<Self, StoreError> {
        Ok(Self::from_dataset(parse_ntriples(input)?))
    }

    /// Parses an N-Triples document and builds a store.
    pub fn from_ntriples_with(input: &str, options: StoreOptions) -> Result<Self, StoreError> {
        Ok(Self::from_dataset_with(parse_ntriples(input)?, options))
    }

    /// The underlying dataset.
    pub fn dataset(&self) -> &Dataset {
        &self.dataset
    }

    /// Number of triples loaded (after inference, if enabled).
    pub fn triple_count(&self) -> usize {
        self.dataset.len()
    }

    /// The type-aware transformed graph (Section 4.1).
    pub fn type_aware_graph(&self) -> &TransformedGraph {
        &self.type_aware
    }

    /// The direct transformed graph (Section 3.2).
    pub fn direct_graph(&self) -> &TransformedGraph {
        &self.direct
    }

    /// The construction options.
    pub fn options(&self) -> &StoreOptions {
        &self.options
    }

    /// The TurboHOM++ configuration this store uses by default.
    pub fn default_config(&self) -> TurboHomConfig {
        TurboHomConfig::turbohom_plus_plus().with_threads(self.options.threads)
    }

    /// Parses a SPARQL query once so it can be executed repeatedly.
    pub fn prepare(&self, sparql: &str) -> Result<PreparedQuery<'_>, StoreError> {
        Ok(PreparedQuery {
            store: self,
            query: parse_query(sparql)?,
        })
    }

    /// Parses and executes a SPARQL query with the chosen engine.
    pub fn execute(&self, sparql: &str, kind: EngineKind) -> Result<QueryResults, StoreError> {
        self.prepare(sparql)?.execute(kind)
    }

    /// Executes with an explicit TurboHOM configuration (used by the
    /// optimization-ablation and parallel-speed-up experiments).
    /// `force_direct` runs over the direct transformation regardless of the
    /// query shape.
    pub fn execute_turbohom(
        &self,
        sparql: &str,
        config: TurboHomConfig,
        force_direct: bool,
    ) -> Result<QueryResults, StoreError> {
        let query = parse_query(sparql)?;
        self.run_turbohom(&query, config, force_direct)
    }

    // ---- internal execution paths -------------------------------------

    fn run_turbohom(
        &self,
        query: &Query,
        config: TurboHomConfig,
        force_direct: bool,
    ) -> Result<QueryResults, StoreError> {
        let projected = query.projected_variables();
        let start = Instant::now();
        let mut rows: Vec<ResultRow> = Vec::new();
        let mut count = 0usize;
        for branch in query.pattern.expand_unions() {
            let (mut branch_rows, branch_count) =
                self.run_branch(&branch, config, force_direct, &projected)?;
            rows.append(&mut branch_rows);
            count += branch_count;
        }
        Ok(QueryResults {
            variables: projected,
            rows,
            solution_count: count,
            elapsed: start.elapsed(),
        })
    }

    /// Runs one union-free branch. Connected branches go straight to the
    /// matching engine; a branch whose required BGP falls apart into several
    /// connected components (e.g. BSBM Q5, which compares two unrelated
    /// products through a FILTER) is evaluated component by component, the
    /// partial results are combined by a cartesian product, and the branch
    /// filters are applied to the combined rows.
    fn run_branch(
        &self,
        branch: &GroupPattern,
        config: TurboHomConfig,
        force_direct: bool,
        projected: &[String],
    ) -> Result<(Vec<ResultRow>, usize), StoreError> {
        let components = split_components(branch);
        if components.len() <= 1 {
            return self.run_connected(branch, config, force_direct, projected);
        }
        // Evaluate each component over its own variables.
        let mut partials: Vec<(Vec<String>, Vec<ResultRow>)> = Vec::new();
        for component in &components {
            let vars = component.all_variables();
            let (rows, _) = self.run_connected(component, config, force_direct, &vars)?;
            partials.push((vars, rows));
        }
        // Cartesian product of the component results.
        let all_vars: Vec<String> = partials.iter().flat_map(|(v, _)| v.clone()).collect();
        let mut combined: Vec<ResultRow> = vec![Vec::new()];
        for (_, rows) in &partials {
            let mut next = Vec::with_capacity(combined.len() * rows.len());
            for prefix in &combined {
                for row in rows {
                    let mut r = prefix.clone();
                    r.extend(row.iter().cloned());
                    next.push(r);
                }
            }
            combined = next;
            if combined.is_empty() {
                break;
            }
        }
        // Apply the branch filters over the combined rows.
        let filters = collect_filters(branch);
        let filtered: Vec<ResultRow> = combined
            .into_iter()
            .filter(|row| {
                let mut ctx = turbohom_sparql::EvalContext::new();
                for (var, term) in all_vars.iter().zip(row.iter()) {
                    if let Some(term) = term {
                        ctx.insert(var.clone(), term.clone());
                    }
                }
                filters.iter().all(|f| f.evaluate_bool(&ctx))
            })
            .collect();
        // Project onto the requested variables.
        let indices: Vec<Option<usize>> = projected
            .iter()
            .map(|v| all_vars.iter().position(|x| x == v))
            .collect();
        let rows: Vec<ResultRow> = filtered
            .iter()
            .map(|row| {
                indices
                    .iter()
                    .map(|i| i.and_then(|i| row[i].clone()))
                    .collect()
            })
            .collect();
        let count = rows.len();
        Ok((rows, count))
    }

    /// Runs one connected, union-free group with the matching engine and
    /// renders the result rows over `out_vars`.
    fn run_connected(
        &self,
        group: &GroupPattern,
        config: TurboHomConfig,
        force_direct: bool,
        out_vars: &[String],
    ) -> Result<(Vec<ResultRow>, usize), StoreError> {
        let use_direct = force_direct || branch_needs_direct(group);
        let (graph, transformed) = self.transform_branch(group, use_direct)?;
        let engine = TurboHomEngine::new(graph, &self.dataset.dictionary, config);
        let result = engine.execute(&transformed)?;
        let mut rows = Vec::new();
        self.append_rows(&mut rows, graph, &transformed, &result, out_vars);
        Ok((rows, result.solution_count))
    }

    /// Transforms one union-free branch, falling back to the direct graph
    /// when the type-aware transformation cannot express the query.
    fn transform_branch(
        &self,
        branch: &GroupPattern,
        use_direct: bool,
    ) -> Result<(&TransformedGraph, TransformedQuery), StoreError> {
        if use_direct {
            let tq = transform_query(branch, &self.direct, &self.dataset.dictionary)?;
            return Ok((&self.direct, tq));
        }
        match transform_query(branch, &self.type_aware, &self.dataset.dictionary) {
            Ok(tq) => Ok((&self.type_aware, tq)),
            Err(
                TransformError::VariableTypeUnsupported
                | TransformError::VariableSubclassUnsupported,
            ) => {
                let tq = transform_query(branch, &self.direct, &self.dataset.dictionary)?;
                Ok((&self.direct, tq))
            }
            Err(e) => Err(e.into()),
        }
    }

    /// Converts matcher solutions into term rows over the projected variables.
    fn append_rows(
        &self,
        rows: &mut Vec<ResultRow>,
        graph: &TransformedGraph,
        query: &TransformedQuery,
        result: &MatchResult,
        projected: &[String],
    ) {
        // Pre-resolve where every projected variable lives.
        enum Slot {
            Vertex(usize),
            Edge(usize),
            Absent,
        }
        let slots: Vec<Slot> = projected
            .iter()
            .map(|var| {
                if let Some(u) = query.graph.vertex_of_variable(var) {
                    Slot::Vertex(u)
                } else if let Some(e) = query
                    .graph
                    .edges()
                    .iter()
                    .position(|e| e.variable.as_deref() == Some(var))
                {
                    Slot::Edge(e)
                } else {
                    Slot::Absent
                }
            })
            .collect();
        for solution in &result.solutions {
            let row: ResultRow = slots
                .iter()
                .map(|slot| match slot {
                    Slot::Vertex(u) => solution.vertices[*u]
                        .and_then(|v| graph.mappings.term_of_vertex(v))
                        .and_then(|tid| self.dataset.dictionary.term(tid).cloned()),
                    Slot::Edge(e) => solution.edge_labels[*e]
                        .and_then(|el| graph.mappings.term_of_elabel(el))
                        .and_then(|tid| self.dataset.dictionary.term(tid).cloned()),
                    Slot::Absent => None,
                })
                .collect();
            rows.push(row);
        }
    }

    fn run_baseline(&self, query: &Query, strategy: JoinStrategy) -> QueryResults {
        let projected = query.projected_variables();
        let start = Instant::now();
        let engine = match strategy {
            JoinStrategy::SortMerge => MergeJoinEngine::new(&self.dataset, &self.permutations),
            JoinStrategy::Hash => HashJoinEngine::new(&self.dataset, &self.permutations),
        };
        let (relation, _stats) = engine.execute(query);
        let columns: Vec<Option<usize>> = projected.iter().map(|v| relation.column(v)).collect();
        let rows: Vec<ResultRow> = relation
            .rows
            .iter()
            .map(|row| {
                columns
                    .iter()
                    .map(|col| {
                        col.and_then(|i| row[i])
                            .and_then(|tid| self.dataset.dictionary.term(tid).cloned())
                    })
                    .collect()
            })
            .collect();
        QueryResults {
            variables: projected,
            solution_count: rows.len(),
            rows,
            elapsed: start.elapsed(),
        }
    }

    /// Renders a term for display (used by the examples).
    pub fn render(&self, term: &Term) -> String {
        term.to_string()
    }
}

/// A parsed query bound to a store.
pub struct PreparedQuery<'s> {
    store: &'s Store,
    query: Query,
}

impl<'s> PreparedQuery<'s> {
    /// The parsed query.
    pub fn query(&self) -> &Query {
        &self.query
    }

    /// Executes the query with the chosen engine.
    pub fn execute(&self, kind: EngineKind) -> Result<QueryResults, StoreError> {
        match kind {
            EngineKind::TurboHomPlusPlus => {
                self.store
                    .run_turbohom(&self.query, self.store.default_config(), false)
            }
            EngineKind::TurboHom => {
                self.store
                    .run_turbohom(&self.query, TurboHomConfig::turbohom(), true)
            }
            EngineKind::MergeJoin => Ok(self
                .store
                .run_baseline(&self.query, JoinStrategy::SortMerge)),
            EngineKind::HashJoin => Ok(self.store.run_baseline(&self.query, JoinStrategy::Hash)),
        }
    }
}

/// Returns `true` if the branch contains a variable in predicate position
/// (anywhere, including OPTIONAL clauses). Such queries must run over the
/// direct transformation: in the type-aware graph the `rdf:type` edges no
/// longer exist, so a variable predicate would silently miss them.
fn branch_needs_direct(branch: &GroupPattern) -> bool {
    branch
        .triples
        .iter()
        .any(|t| matches!(t.predicate, SparqlTerm::Variable(_)))
        || branch.optionals.iter().any(branch_needs_direct)
        || branch.unions.iter().flatten().any(branch_needs_direct)
}

/// All FILTER expressions of a branch, including those inside OPTIONALs
/// (used when the branch is evaluated component-wise at the store level).
fn collect_filters(branch: &GroupPattern) -> Vec<turbohom_sparql::Expression> {
    let mut out = branch.filters.clone();
    for opt in &branch.optionals {
        out.extend(collect_filters(opt));
    }
    out
}

/// Splits a union-free branch into the connected components of its required
/// basic graph pattern. Variables *and* constants connect patterns (they map
/// to shared query vertices). OPTIONAL clauses are attached to the first
/// component they share a variable with; FILTERs are deliberately dropped —
/// the caller re-applies them after combining the component results.
fn split_components(branch: &GroupPattern) -> Vec<GroupPattern> {
    if branch.triples.len() <= 1 {
        return vec![branch.clone()];
    }
    // Union-find over the term keys of the required triples.
    let mut keys: Vec<String> = Vec::new();
    let mut parents: Vec<usize> = Vec::new();
    fn find(parents: &mut [usize], mut x: usize) -> usize {
        while parents[x] != x {
            parents[x] = parents[parents[x]];
            x = parents[x];
        }
        x
    }
    let key_index = |keys: &mut Vec<String>, parents: &mut Vec<usize>, key: String| -> usize {
        match keys.iter().position(|k| *k == key) {
            Some(i) => i,
            None => {
                keys.push(key);
                parents.push(parents.len());
                parents.len() - 1
            }
        }
    };
    let term_key = |t: &SparqlTerm| match t {
        SparqlTerm::Variable(v) => format!("?{v}"),
        SparqlTerm::Constant(c) => c.to_string(),
    };
    let mut triple_roots: Vec<usize> = Vec::with_capacity(branch.triples.len());
    for triple in &branch.triples {
        let mut nodes = vec![
            key_index(&mut keys, &mut parents, term_key(&triple.subject)),
            key_index(&mut keys, &mut parents, term_key(&triple.object)),
        ];
        if triple.predicate.is_variable() {
            nodes.push(key_index(
                &mut keys,
                &mut parents,
                term_key(&triple.predicate),
            ));
        }
        let root = find(&mut parents, nodes[0]);
        for &n in &nodes[1..] {
            let r = find(&mut parents, n);
            parents[r] = root;
        }
        triple_roots.push(root);
    }
    // Normalize roots after all unions.
    let roots: Vec<usize> = triple_roots
        .iter()
        .map(|&r| find(&mut parents, r))
        .collect();
    let mut distinct_roots: Vec<usize> = roots.clone();
    distinct_roots.sort_unstable();
    distinct_roots.dedup();
    if distinct_roots.len() <= 1 {
        return vec![branch.clone()];
    }
    let mut components: Vec<GroupPattern> =
        distinct_roots.iter().map(|_| GroupPattern::new()).collect();
    for (triple, root) in branch.triples.iter().zip(&roots) {
        let idx = distinct_roots
            .iter()
            .position(|r| r == root)
            .expect("root present");
        components[idx].triples.push(triple.clone());
    }
    // Attach each OPTIONAL to the first component sharing a variable.
    for opt in &branch.optionals {
        let opt_vars = opt.all_variables();
        let target = components
            .iter()
            .position(|c| {
                let vars = c.all_variables();
                opt_vars.iter().any(|v| vars.contains(v))
            })
            .unwrap_or(0);
        components[target].optionals.push(opt.clone());
    }
    components
}

#[cfg(test)]
mod tests {
    use super::*;
    use turbohom_rdf::vocab;

    fn ub(l: &str) -> String {
        format!("http://ub.org/{l}")
    }

    fn sample_store() -> Store {
        let mut ds = Dataset::new();
        ds.insert_iris(
            &ub("GraduateStudent"),
            vocab::RDFS_SUBCLASSOF,
            &ub("Student"),
        );
        for i in 0..3 {
            let s = ub(&format!("student{i}"));
            ds.insert_iris(&s, vocab::RDF_TYPE, &ub("GraduateStudent"));
            ds.insert_iris(&s, &ub("memberOf"), &ub("dept0"));
        }
        ds.insert_iris(&ub("dept0"), vocab::RDF_TYPE, &ub("Department"));
        ds.insert_iris(&ub("dept0"), &ub("subOrganizationOf"), &ub("univ0"));
        ds.insert_iris(&ub("univ0"), vocab::RDF_TYPE, &ub("University"));
        Store::from_dataset_with(
            ds,
            StoreOptions {
                inference: true,
                threads: 1,
            },
        )
    }

    #[test]
    fn all_engines_agree_on_a_bgp() {
        let store = sample_store();
        let q = r#"PREFIX rdf: <http://www.w3.org/1999/02/22-rdf-syntax-ns#>
                   PREFIX ub: <http://ub.org/>
                   SELECT ?x ?d WHERE { ?x rdf:type ub:Student . ?x ub:memberOf ?d . }"#;
        let mut counts = Vec::new();
        for kind in EngineKind::all() {
            let r = store.execute(q, kind).unwrap();
            counts.push(r.len());
            assert_eq!(r.variables, vec!["x", "d"]);
        }
        assert!(counts.iter().all(|&c| c == 3), "{counts:?}");
    }

    #[test]
    fn inference_option_materializes_superclass_types() {
        let store = sample_store();
        // Without inference the Student class has no direct instances.
        let q = r#"PREFIX rdf: <http://www.w3.org/1999/02/22-rdf-syntax-ns#>
                   PREFIX ub: <http://ub.org/>
                   SELECT ?x WHERE { ?x rdf:type ub:Student . }"#;
        assert_eq!(
            store
                .execute(q, EngineKind::TurboHomPlusPlus)
                .unwrap()
                .len(),
            3
        );
        assert_eq!(store.execute(q, EngineKind::MergeJoin).unwrap().len(), 3);
    }

    #[test]
    fn from_ntriples_round_trip() {
        let nt = r#"
<http://ex.org/a> <http://www.w3.org/1999/02/22-rdf-syntax-ns#type> <http://ex.org/T> .
<http://ex.org/a> <http://ex.org/p> "42"^^<http://www.w3.org/2001/XMLSchema#integer> .
"#;
        let store = Store::from_ntriples(nt).unwrap();
        assert_eq!(store.triple_count(), 2);
        let r = store
            .execute(
                "SELECT ?v WHERE { <http://ex.org/a> <http://ex.org/p> ?v . }",
                EngineKind::TurboHomPlusPlus,
            )
            .unwrap();
        assert_eq!(r.len(), 1);
        assert_eq!(r.column("v")[0].as_integer(), Some(42));
    }

    #[test]
    fn variable_predicate_falls_back_to_direct_graph() {
        let store = sample_store();
        let q = "SELECT ?p ?o WHERE { <http://ub.org/student0> ?p ?o . }";
        let graph = store.execute(q, EngineKind::TurboHomPlusPlus).unwrap();
        let join = store.execute(q, EngineKind::MergeJoin).unwrap();
        // Both must see the rdf:type triples (2 after inference) + memberOf.
        assert_eq!(graph.len(), join.len());
        assert_eq!(graph.len(), 3);
    }

    #[test]
    fn prepared_query_is_reusable() {
        let store = sample_store();
        let prepared = store
            .prepare(
                r#"PREFIX ub: <http://ub.org/>
                   SELECT ?x WHERE { ?x ub:memberOf <http://ub.org/dept0> . }"#,
            )
            .unwrap();
        let a = prepared.execute(EngineKind::TurboHomPlusPlus).unwrap();
        let b = prepared.execute(EngineKind::HashJoin).unwrap();
        assert_eq!(a.len(), b.len());
        assert_eq!(a.len(), 3);
        assert!(a.elapsed >= std::time::Duration::ZERO);
    }

    #[test]
    fn parse_errors_are_reported() {
        let store = sample_store();
        assert!(matches!(
            store.execute("SELECT WHERE", EngineKind::TurboHomPlusPlus),
            Err(StoreError::Sparql(_))
        ));
        assert!(Store::from_ntriples("not ntriples").is_err());
    }

    #[test]
    fn execute_turbohom_with_custom_config() {
        let store = sample_store();
        let q = r#"PREFIX rdf: <http://www.w3.org/1999/02/22-rdf-syntax-ns#>
                   PREFIX ub: <http://ub.org/>
                   SELECT ?x ?y ?z WHERE {
                     ?x rdf:type ub:Student . ?y rdf:type ub:University . ?z rdf:type ub:Department .
                     ?x ub:memberOf ?z . ?z ub:subOrganizationOf ?y . }"#;
        for opts in [
            turbohom_core::Optimizations::all(),
            turbohom_core::Optimizations::none(),
        ] {
            let config = TurboHomConfig::default().with_optimizations(opts);
            for force_direct in [false, true] {
                let r = store.execute_turbohom(q, config, force_direct).unwrap();
                assert_eq!(r.len(), 3, "{opts:?} force_direct={force_direct}");
            }
        }
    }

    #[test]
    fn union_and_optional_work_through_the_store() {
        let store = sample_store();
        let q = r#"PREFIX rdf: <http://www.w3.org/1999/02/22-rdf-syntax-ns#>
                   PREFIX ub: <http://ub.org/>
                   SELECT ?x ?u WHERE {
                     { ?x rdf:type ub:Department . } UNION { ?x rdf:type ub:University . }
                     OPTIONAL { ?x ub:subOrganizationOf ?u . }
                   }"#;
        let a = store.execute(q, EngineKind::TurboHomPlusPlus).unwrap();
        let b = store.execute(q, EngineKind::MergeJoin).unwrap();
        assert_eq!(a.len(), 2);
        assert_eq!(b.len(), 2);
        // dept0 has a parent organization, univ0 does not.
        assert_eq!(a.column("u").len(), 1);
        assert_eq!(b.column("u").len(), 1);
    }

    #[test]
    fn graph_accessors_expose_table1_statistics() {
        let store = sample_store();
        let aware = store.type_aware_graph().graph.stats();
        let direct = store.direct_graph().graph.stats();
        assert!(aware.vertices < direct.vertices);
        assert!(aware.edges < direct.edges);
        assert_eq!(store.options().threads, 1);
    }
}
