//! EXPLAIN / ANALYZE: structured plan introspection with
//! estimate-vs-actual telemetry.
//!
//! [`Store::explain`] answers "what would this query do?" *without executing
//! it*: the parsed BGP's transformed components, the chosen start vertex,
//! the first non-empty candidate region's sizes, and the matching order with
//! the per-step cardinality estimates (`|CR(u)|`, paper Section 4.3) that
//! justified it. On a [`ShardedStore`] the report additionally carries one
//! verdict per shard: pruned (naming the summary-graph check that fired —
//! exact predicate/class probe or Bloom term probe), live, or routed away by
//! the constant-anchor ownership rule.
//!
//! [`Store::analyze`] executes the query and annotates the same tree with
//! actuals — rows produced per matching step, per-shard row counts, the
//! matcher's counters — and computes the per-step **q-error**
//! `max(estimate/actual, actual/estimate)`, the standard cardinality-
//! estimation quality measure. A live shard that contributed zero rows is a
//! *false-live*: the summary graph failed to prune it (Bloom false positive
//! or a constant combination present but disconnected), which the service
//! layer exports as `turbohom_summary_prune_errors_total`.
//!
//! Reports serialize to a stable JSON document (`turbohom-explain/1`) that
//! the HTTP server returns for `explain=1` and splices into the SPARQL-JSON
//! body for `analyze=1`.

use crate::error::StoreError;
use crate::plan::{ComponentPlan, QueryPlan};
use crate::results::{json_escape, QueryResults};
use crate::sharded::{AnyStore, ShardedPlan, ShardedStore};
use crate::store::{EngineKind, Store};
use turbohom_core::candidate_region::explore_candidate_region;
use turbohom_core::query_tree::QueryTree;
use turbohom_core::start_vertex::choose_start_vertex;
use turbohom_core::{MatchStats, MatchingOrder, TurboHomConfig};
use turbohom_partition::{labeled_footprint, summary_verdict, Anchor, SummaryVerdict};
use turbohom_sparql::{parse_query, Query};
use turbohom_trace::Trace;

/// Schema identifier embedded in every report.
pub const EXPLAIN_SCHEMA: &str = "turbohom-explain/1";

/// The q-error of one cardinality estimate: `max(e/a, a/e)` with both sides
/// clamped to at least 1 (an estimate of 0 against an actual of 0 is a
/// perfect 1.0; a zero on one side only is penalized as if it were 1).
pub fn qerror(estimate: u64, actual: u64) -> f64 {
    let e = estimate.max(1) as f64;
    let a = actual.max(1) as f64;
    (e / a).max(a / e)
}

/// A structured EXPLAIN (or ANALYZE) report.
#[derive(Debug, Clone)]
pub struct ExplainReport {
    /// The engine the plan was prepared for.
    pub engine: EngineKind,
    /// `"single"` or `"sharded"`.
    pub store_flavor: &'static str,
    /// `"graph"` for the matching engines, `"join"` for the baselines.
    pub plan_type: &'static str,
    /// `true` once actuals have been attached (ANALYZE).
    pub analyzed: bool,
    /// The query's `LIMIT`, if any.
    pub limit: Option<usize>,
    /// `true` when the LIMIT is pushed into the enumerator (no `OFFSET`
    /// shifts the window); `false` when absent or blocked.
    pub limit_pushdown: bool,
    /// One entry per transformed connected component (single-store path;
    /// empty for join plans and sharded reports).
    pub components: Vec<ComponentExplain>,
    /// One entry per shard (sharded path; empty on single stores).
    pub shards: Vec<ShardExplain>,
    /// The sharding anchor (`"?var"` or the constant term), sharded only.
    pub anchor: Option<String>,
    /// Execution actuals (ANALYZE only).
    pub actual: Option<ActualSummary>,
}

/// The static plan of one transformed connected component.
#[derive(Debug, Clone)]
pub struct ComponentExplain {
    /// Union branch index.
    pub branch: usize,
    /// Component index within the branch.
    pub component: usize,
    /// `"type-aware"` or `"direct"`.
    pub graph: &'static str,
    /// Query-graph vertex count.
    pub vertices: usize,
    /// Query-graph edge count.
    pub edges: usize,
    /// Why the component short-circuits without a matching order, if it does.
    pub note: Option<&'static str>,
    /// The chosen start query vertex.
    pub start: Option<StartExplain>,
    /// Total candidate vertices in the first non-empty candidate region.
    pub region_candidates: Option<usize>,
    /// The matching order, one entry per position.
    pub steps: Vec<StepExplain>,
}

/// The start-vertex choice of one component.
#[derive(Debug, Clone)]
pub struct StartExplain {
    /// The chosen start query vertex (paper: `ChooseStartQueryVertex`).
    pub query_vertex: usize,
    /// Its SPARQL variable name, if it is a variable.
    pub variable: Option<String>,
    /// Number of starting data vertices enumerated for it.
    pub candidates: usize,
}

/// One matching-order position.
#[derive(Debug, Clone)]
pub struct StepExplain {
    /// Position in the matching order (0 = start vertex).
    pub position: usize,
    /// The query vertex matched at this position.
    pub query_vertex: usize,
    /// Its SPARQL variable name, if any.
    pub variable: Option<String>,
    /// The candidate-count estimate that justified the order: `|CR(u)|` of
    /// the first non-empty region (EXPLAIN), or summed over all explored
    /// regions (ANALYZE).
    pub estimate: u64,
    /// Partial mappings actually extended at this step (ANALYZE only).
    pub rows: Option<u64>,
    /// `qerror(estimate, rows)` (ANALYZE only).
    pub qerror: Option<f64>,
}

/// One shard's verdict (sharded stores).
#[derive(Debug, Clone)]
pub struct ShardExplain {
    /// Shard index.
    pub shard: usize,
    /// Triples in the shard (including halo replicas).
    pub triples: usize,
    /// `"live"`, `"pruned"` or `"routed-away"`.
    pub verdict: &'static str,
    /// The summary check that pruned the shard (`"predicate"`, `"class"`,
    /// `"term"`), pruned only.
    pub check: Option<&'static str>,
    /// How that check probes (`"exact"` or `"bloom"`), pruned only.
    pub probe: Option<&'static str>,
    /// The query constant that no summary entry matched, pruned only.
    pub term: Option<String>,
    /// The shard-local component plans, live only.
    pub components: Vec<ComponentExplain>,
    /// Rows the shard contributed after the ownership filter (ANALYZE only).
    pub rows: Option<u64>,
    /// `true` when the shard was live yet contributed zero rows — the
    /// summary graph failed to prune it (ANALYZE only).
    pub false_live: Option<bool>,
}

/// Execution actuals attached by ANALYZE.
#[derive(Debug, Clone)]
pub struct ActualSummary {
    /// Solutions found.
    pub solutions: u64,
    /// Result rows rendered (differs from `solutions` under count-only).
    pub rows: u64,
    /// Wall-clock execution time in microseconds.
    pub elapsed_us: u64,
    /// Adjacency-intersection operations (+INT).
    pub intersections: u64,
    /// Search-tree recursions.
    pub recursions: u64,
    /// Morsels dispatched across workers.
    pub morsels: u64,
    /// Morsels obtained by work stealing.
    pub steals: u64,
    /// The worst per-step q-error, if step telemetry was recorded.
    pub max_qerror: Option<f64>,
    /// Live shards that contributed zero rows (sharded ANALYZE only).
    pub false_live_shards: u64,
}

impl ExplainReport {
    fn new(
        engine: EngineKind,
        store_flavor: &'static str,
        plan_type: &'static str,
        limit: Option<usize>,
        limit_pushdown: bool,
    ) -> Self {
        ExplainReport {
            engine,
            store_flavor,
            plan_type,
            analyzed: false,
            limit,
            limit_pushdown,
            components: Vec::new(),
            shards: Vec::new(),
            anchor: None,
            actual: None,
        }
    }

    /// The worst per-step q-error across the whole report (ANALYZE only).
    pub fn max_qerror(&self) -> Option<f64> {
        self.actual.as_ref().and_then(|a| a.max_qerror)
    }

    /// Every per-step q-error recorded by ANALYZE, in matching-order
    /// position order (what the service feeds its q-error histogram).
    pub fn step_qerrors(&self) -> Vec<f64> {
        self.all_components()
            .flat_map(|c| c.steps.iter().filter_map(|s| s.qerror))
            .collect()
    }

    /// Number of live shards that contributed zero rows (ANALYZE only).
    pub fn false_live_shards(&self) -> u64 {
        self.actual.as_ref().map_or(0, |a| a.false_live_shards)
    }

    fn all_components(&self) -> impl Iterator<Item = &ComponentExplain> {
        self.components
            .iter()
            .chain(self.shards.iter().flat_map(|s| s.components.iter()))
    }

    /// Annotates the report with one execution's actuals. Per-step row
    /// counts are attached when exactly one component carries a matching
    /// order (the common case — the merged counters cannot be split across
    /// several components); the summary counters are attached always.
    fn attach_actuals(&mut self, results: &QueryResults) {
        self.analyzed = true;
        let max_qerror = results
            .step_estimates
            .iter()
            .zip(&results.step_rows)
            .map(|(&e, &a)| qerror(e, a))
            .fold(None, |m: Option<f64>, q| Some(m.map_or(q, |m| m.max(q))));
        let mut with_steps: Vec<&mut ComponentExplain> = self
            .components
            .iter_mut()
            .chain(self.shards.iter_mut().flat_map(|s| s.components.iter_mut()))
            .filter(|c| !c.steps.is_empty())
            .collect();
        if let [component] = with_steps.as_mut_slice() {
            for step in component.steps.iter_mut() {
                let est = results.step_estimates.get(step.position).copied();
                let act = results.step_rows.get(step.position).copied();
                if let Some(est) = est {
                    step.estimate = est;
                }
                step.rows = act;
                step.qerror = match (est.or(Some(step.estimate)), act) {
                    (Some(e), Some(a)) => Some(qerror(e, a)),
                    _ => None,
                };
            }
        }
        self.actual = Some(ActualSummary {
            solutions: results.solution_count as u64,
            rows: results.rows.len() as u64,
            elapsed_us: results.elapsed.as_micros() as u64,
            intersections: results.stats.intersection_ops as u64,
            recursions: results.stats.search_recursions as u64,
            morsels: results.stats.morsels as u64,
            steals: results.stats.morsels_stolen as u64,
            max_qerror,
            false_live_shards: 0,
        });
    }

    /// Serializes the report as a `turbohom-explain/1` JSON document.
    pub fn to_json(&self) -> String {
        let mut out = String::with_capacity(512);
        out.push_str("{\"schema\":\"");
        out.push_str(EXPLAIN_SCHEMA);
        out.push_str("\",\"mode\":\"");
        out.push_str(if self.analyzed { "analyze" } else { "explain" });
        out.push_str("\",\"engine\":\"");
        out.push_str(self.engine.name());
        out.push_str("\",\"store\":\"");
        out.push_str(self.store_flavor);
        out.push_str("\",\"plan\":\"");
        out.push_str(self.plan_type);
        out.push_str("\",\"limit\":");
        match self.limit {
            Some(l) => out.push_str(&l.to_string()),
            None => out.push_str("null"),
        }
        out.push_str(",\"limit_pushdown\":");
        out.push_str(if self.limit_pushdown { "true" } else { "false" });
        if let Some(anchor) = &self.anchor {
            out.push_str(",\"anchor\":\"");
            out.push_str(&json_escape(anchor));
            out.push('"');
        }
        out.push_str(",\"components\":[");
        for (i, c) in self.components.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            c.append_json(&mut out);
        }
        out.push(']');
        if !self.shards.is_empty() {
            out.push_str(",\"shards\":[");
            for (i, s) in self.shards.iter().enumerate() {
                if i > 0 {
                    out.push(',');
                }
                s.append_json(&mut out);
            }
            out.push(']');
        }
        if let Some(a) = &self.actual {
            out.push_str(",\"actual\":{\"solutions\":");
            out.push_str(&a.solutions.to_string());
            out.push_str(",\"rows\":");
            out.push_str(&a.rows.to_string());
            out.push_str(",\"elapsed_us\":");
            out.push_str(&a.elapsed_us.to_string());
            out.push_str(",\"intersections\":");
            out.push_str(&a.intersections.to_string());
            out.push_str(",\"recursions\":");
            out.push_str(&a.recursions.to_string());
            out.push_str(",\"morsels\":");
            out.push_str(&a.morsels.to_string());
            out.push_str(",\"steals\":");
            out.push_str(&a.steals.to_string());
            out.push_str(",\"max_qerror\":");
            match a.max_qerror {
                Some(q) => out.push_str(&format_f64(q)),
                None => out.push_str("null"),
            }
            out.push_str(",\"false_live_shards\":");
            out.push_str(&a.false_live_shards.to_string());
            out.push('}');
        }
        out.push('}');
        out
    }
}

/// Formats an f64 for JSON: finite shortest-round-trip representation,
/// with an explicit `.0` kept so the value stays a JSON number either way.
fn format_f64(v: f64) -> String {
    let s = format!("{v}");
    if s.contains('.') || s.contains('e') {
        s
    } else {
        format!("{s}.0")
    }
}

impl ComponentExplain {
    fn append_json(&self, out: &mut String) {
        out.push_str("{\"branch\":");
        out.push_str(&self.branch.to_string());
        out.push_str(",\"component\":");
        out.push_str(&self.component.to_string());
        out.push_str(",\"graph\":\"");
        out.push_str(self.graph);
        out.push_str("\",\"vertices\":");
        out.push_str(&self.vertices.to_string());
        out.push_str(",\"edges\":");
        out.push_str(&self.edges.to_string());
        if let Some(note) = self.note {
            out.push_str(",\"note\":\"");
            out.push_str(&json_escape(note));
            out.push('"');
        }
        if let Some(start) = &self.start {
            out.push_str(",\"start\":{\"query_vertex\":");
            out.push_str(&start.query_vertex.to_string());
            out.push_str(",\"variable\":");
            append_opt_str(out, start.variable.as_deref());
            out.push_str(",\"candidates\":");
            out.push_str(&start.candidates.to_string());
            out.push('}');
        }
        if let Some(rc) = self.region_candidates {
            out.push_str(",\"region_candidates\":");
            out.push_str(&rc.to_string());
        }
        out.push_str(",\"steps\":[");
        for (i, s) in self.steps.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            out.push_str("{\"position\":");
            out.push_str(&s.position.to_string());
            out.push_str(",\"query_vertex\":");
            out.push_str(&s.query_vertex.to_string());
            out.push_str(",\"variable\":");
            append_opt_str(out, s.variable.as_deref());
            out.push_str(",\"estimate\":");
            out.push_str(&s.estimate.to_string());
            if let Some(rows) = s.rows {
                out.push_str(",\"rows\":");
                out.push_str(&rows.to_string());
            }
            if let Some(q) = s.qerror {
                out.push_str(",\"qerror\":");
                out.push_str(&format_f64(q));
            }
            out.push('}');
        }
        out.push_str("]}");
    }
}

impl ShardExplain {
    fn append_json(&self, out: &mut String) {
        out.push_str("{\"shard\":");
        out.push_str(&self.shard.to_string());
        out.push_str(",\"triples\":");
        out.push_str(&self.triples.to_string());
        out.push_str(",\"verdict\":\"");
        out.push_str(self.verdict);
        out.push('"');
        if let Some(check) = self.check {
            out.push_str(",\"check\":\"");
            out.push_str(check);
            out.push_str("\",\"probe\":\"");
            out.push_str(self.probe.unwrap_or("exact"));
            out.push('"');
        }
        if let Some(term) = &self.term {
            out.push_str(",\"term\":\"");
            out.push_str(&json_escape(term));
            out.push('"');
        }
        if !self.components.is_empty() {
            out.push_str(",\"components\":[");
            for (i, c) in self.components.iter().enumerate() {
                if i > 0 {
                    out.push(',');
                }
                c.append_json(out);
            }
            out.push(']');
        }
        if let Some(rows) = self.rows {
            out.push_str(",\"rows\":");
            out.push_str(&rows.to_string());
        }
        if let Some(fl) = self.false_live {
            out.push_str(",\"false_live\":");
            out.push_str(if fl { "true" } else { "false" });
        }
        out.push('}');
    }
}

fn append_opt_str(out: &mut String, v: Option<&str>) {
    match v {
        Some(s) => {
            out.push('"');
            out.push_str(&json_escape(s));
            out.push('"');
        }
        None => out.push_str("null"),
    }
}

/// Builds the static plan tree of one transformed component by mirroring
/// the engine prologue: guards, start-vertex choice, query tree, first
/// non-empty candidate region, matching order — everything short of
/// enumeration.
fn explain_component(
    store: &Store,
    config: &TurboHomConfig,
    comp: &ComponentPlan,
    branch: usize,
    index: usize,
) -> ComponentExplain {
    let graph = if comp.use_direct() {
        store.direct_graph()
    } else {
        store.type_aware_graph()
    };
    let tq = comp.transformed();
    let mut ce = ComponentExplain {
        branch,
        component: index,
        graph: if comp.use_direct() {
            "direct"
        } else {
            "type-aware"
        },
        vertices: tq.graph.vertex_count(),
        edges: tq.graph.edge_count(),
        note: None,
        start: None,
        region_candidates: None,
        steps: Vec::new(),
    };
    // The same guards `execute_with_order_traced` applies, in the same order.
    if tq.unsatisfiable || tq.graph.vertex_count() == 0 {
        ce.note = Some("unsatisfiable: a query constant does not occur in the data");
        return ce;
    }
    if !tq.graph.is_connected() {
        ce.note = Some("disconnected query graph");
        return ce;
    }
    if tq.vertex_clause.iter().all(|c| c.is_some()) {
        ce.note = Some("no required part (every vertex is OPTIONAL)");
        return ce;
    }
    let mut stats = MatchStats::default();
    let selection = choose_start_vertex(graph, config, tq, &mut stats);
    ce.start = Some(StartExplain {
        query_vertex: selection.query_vertex,
        variable: tq.graph.vertex(selection.query_vertex).variable.clone(),
        candidates: selection.start_vertices.len(),
    });
    if selection.start_vertices.is_empty() {
        ce.note = Some("start vertex has no candidate data vertices");
        return ce;
    }
    let tree = QueryTree::build(&tq.graph, selection.query_vertex);
    // `+REUSE`: the order is determined from the first non-empty region.
    let region = selection
        .start_vertices
        .iter()
        .find_map(|&s| explore_candidate_region(graph, config, tq, &tree, s, &mut stats));
    let Some(region) = region else {
        ce.note = Some("every candidate region is empty");
        return ce;
    };
    ce.region_candidates = Some(region.total_candidates());
    let order = MatchingOrder::determine(tq, &tree, &region);
    ce.steps = order
        .order
        .iter()
        .enumerate()
        .map(|(position, &u)| StepExplain {
            position,
            query_vertex: u,
            variable: tq.graph.vertex(u).variable.clone(),
            estimate: region.count(u) as u64,
            rows: None,
            qerror: None,
        })
        .collect();
    ce
}

/// All component plans of one prepared single-store plan, explained.
fn explain_plan_components(store: &Store, plan: &QueryPlan) -> Vec<ComponentExplain> {
    let Some((config, branches)) = plan.graph_parts() else {
        return Vec::new();
    };
    let mut out = Vec::new();
    for (b, branch) in branches.iter().enumerate() {
        for (c, comp) in branch.components().iter().enumerate() {
            out.push(explain_component(store, config, comp, b, c));
        }
    }
    out
}

impl Store {
    /// Explains a query **without executing it**: the structured plan tree
    /// the chosen engine would run (see the module docs for what it holds).
    pub fn explain(&self, sparql: &str, kind: EngineKind) -> Result<ExplainReport, StoreError> {
        let query = parse_query(sparql)?;
        let plan = self.plan_query(&query, kind)?;
        Ok(self.explain_plan(&query, &plan))
    }

    /// Builds the EXPLAIN report for an already prepared plan.
    pub(crate) fn explain_plan(&self, query: &Query, plan: &QueryPlan) -> ExplainReport {
        let plan_type = if plan.join_strategy().is_some() {
            "join"
        } else {
            "graph"
        };
        let mut report = ExplainReport::new(
            plan.kind(),
            "single",
            plan_type,
            query.limit,
            plan.limit().is_some(),
        );
        report.components = explain_plan_components(self, plan);
        report
    }

    /// Executes a query and returns the results together with the EXPLAIN
    /// tree annotated with actuals (per-step rows, q-errors, matcher
    /// counters). The embedded-API counterpart of the server's `analyze=1`.
    pub fn analyze(
        &self,
        sparql: &str,
        kind: EngineKind,
        threads: Option<usize>,
    ) -> Result<(QueryResults, ExplainReport), StoreError> {
        let query = parse_query(sparql)?;
        let plan = self.plan_query(&query, kind)?;
        let mut report = self.explain_plan(&query, &plan);
        let results = self.run_plan_with(&plan, threads)?;
        report.attach_actuals(&results);
        Ok((results, report))
    }
}

impl ShardedStore {
    /// Explains a query **without executing it**: per-shard summary
    /// verdicts (naming the check that pruned each shard), the ownership
    /// route, and the shard-local plan trees of the live shards.
    pub fn explain(&self, sparql: &str, kind: EngineKind) -> Result<ExplainReport, StoreError> {
        let query = parse_query(sparql)?;
        let plan = self.prepare_plan(sparql, kind)?;
        Ok(self.explain_plan(&query, &plan))
    }

    /// Builds the EXPLAIN report for an already prepared sharded plan.
    pub(crate) fn explain_plan(&self, query: &Query, plan: &ShardedPlan) -> ExplainReport {
        let plan_type = match plan.kind() {
            EngineKind::TurboHomPlusPlus | EngineKind::TurboHom => "graph",
            EngineKind::MergeJoin | EngineKind::HashJoin => "join",
        };
        let mut report = ExplainReport::new(
            plan.kind(),
            "sharded",
            plan_type,
            query.limit,
            plan.limit().is_some(),
        );
        report.anchor = Some(match plan.anchor() {
            Anchor::Variable(v) => format!("?{v}"),
            Anchor::Constant(t) => t.to_string(),
        });
        let fp = labeled_footprint(query);
        let mut scratch = String::new();
        let route = match plan.anchor() {
            Anchor::Constant(term) => Some(self.ownership().owner(term, &mut scratch)),
            Anchor::Variable(_) => None,
        };
        for (i, summary) in self.summaries().iter().enumerate() {
            let mut se = ShardExplain {
                shard: i,
                triples: self.shard(i).triple_count(),
                verdict: "live",
                check: None,
                probe: None,
                term: None,
                components: Vec::new(),
                rows: None,
                false_live: None,
            };
            if route.is_some_and(|owner| owner != i) {
                // The constant anchor's owner is another shard; the summary
                // was never probed (same order as plan preparation). The
                // deciding check is the ownership route on the anchor term.
                se.verdict = "routed-away";
                se.check = Some("ownership-route");
                if let Anchor::Constant(term) = plan.anchor() {
                    se.term = Some(term.to_string());
                }
            } else {
                match summary_verdict(summary, &fp) {
                    SummaryVerdict::Live => {
                        if let Some(shard_plan) = plan.shard_plan(i) {
                            se.components = explain_plan_components(self.shard(i), shard_plan);
                        }
                    }
                    SummaryVerdict::Pruned { check, term } => {
                        se.verdict = "pruned";
                        se.check = Some(check.name());
                        se.probe = Some(check.mode());
                        se.term = Some(term);
                    }
                }
            }
            report.shards.push(se);
        }
        report
    }

    /// Executes a query and annotates the EXPLAIN tree with actuals,
    /// including per-shard row counts and the false-live verdicts (a live
    /// shard that contributed zero rows was a summary-pruning miss).
    pub fn analyze(
        &self,
        sparql: &str,
        kind: EngineKind,
        threads: Option<usize>,
    ) -> Result<(QueryResults, ExplainReport), StoreError> {
        let query = parse_query(sparql)?;
        let plan = self.prepare_plan(sparql, kind)?;
        let mut report = self.explain_plan(&query, &plan);
        // A coarse trace records the per-shard `shard_execute` roll-ups,
        // which carry exactly the per-shard row counts ANALYZE needs.
        let trace = Trace::new(0);
        let results = self.run_plan_traced(&plan, threads, &trace)?;
        let trace_report = trace.finish();
        let mut false_live = 0u64;
        for span in trace_report
            .spans
            .iter()
            .filter(|s| s.name == "shard_execute")
        {
            let shard = span.counters.iter().find(|(n, _)| *n == "shard");
            let rows = span.counters.iter().find(|(n, _)| *n == "rows");
            if let (Some(&(_, shard)), Some(&(_, rows))) = (shard, rows) {
                if let Some(se) = report.shards.iter_mut().find(|s| s.shard == shard as usize) {
                    se.rows = Some(rows);
                    let fl = se.verdict == "live" && rows == 0;
                    se.false_live = Some(fl);
                    if fl {
                        false_live += 1;
                    }
                }
            }
        }
        report.attach_actuals(&results);
        if let Some(actual) = &mut report.actual {
            actual.false_live_shards = false_live;
        }
        Ok((results, report))
    }
}

impl AnyStore {
    /// `"single"` or `"sharded"` (the store-flavor label on per-engine
    /// metrics and EXPLAIN reports).
    pub fn flavor_name(&self) -> &'static str {
        match self {
            AnyStore::Single(_) => "single",
            AnyStore::Sharded(_) => "sharded",
        }
    }

    /// Dispatches [`Store::explain`] / [`ShardedStore::explain`].
    pub fn explain(&self, sparql: &str, kind: EngineKind) -> Result<ExplainReport, StoreError> {
        match self {
            AnyStore::Single(s) => s.explain(sparql, kind),
            AnyStore::Sharded(s) => s.explain(sparql, kind),
        }
    }

    /// Dispatches [`Store::analyze`] / [`ShardedStore::analyze`].
    pub fn analyze(
        &self,
        sparql: &str,
        kind: EngineKind,
        threads: Option<usize>,
    ) -> Result<(QueryResults, ExplainReport), StoreError> {
        match self {
            AnyStore::Single(s) => s.analyze(sparql, kind, threads),
            AnyStore::Sharded(s) => s.analyze(sparql, kind, threads),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::sharded::ShardedOptions;
    use crate::store::StoreOptions;
    use std::sync::Arc;
    use turbohom_rdf::{vocab, Dataset};

    fn ub(l: &str) -> String {
        format!("http://ub.org/{l}")
    }

    fn sample_dataset() -> Dataset {
        let mut ds = Dataset::new();
        ds.insert_iris(
            &ub("GraduateStudent"),
            vocab::RDFS_SUBCLASSOF,
            &ub("Student"),
        );
        for d in 0..2 {
            let dept = ub(&format!("dept{d}"));
            ds.insert_iris(&dept, vocab::RDF_TYPE, &ub("Department"));
            ds.insert_iris(&dept, &ub("subOrganizationOf"), &ub("univ0"));
            for i in 0..5 {
                let s = ub(&format!("student{d}_{i}"));
                ds.insert_iris(&s, vocab::RDF_TYPE, &ub("GraduateStudent"));
                ds.insert_iris(&s, &ub("memberOf"), &dept);
            }
        }
        ds.insert_iris(&ub("univ0"), vocab::RDF_TYPE, &ub("University"));
        ds
    }

    fn sample_store() -> Store {
        Store::from_dataset_with(
            sample_dataset(),
            StoreOptions {
                inference: true,
                threads: 1,
            },
        )
    }

    const Q: &str = r#"PREFIX rdf: <http://www.w3.org/1999/02/22-rdf-syntax-ns#>
                       PREFIX ub: <http://ub.org/>
                       SELECT ?x ?d WHERE { ?x rdf:type ub:Student . ?x ub:memberOf ?d . }"#;

    #[test]
    fn explain_builds_a_static_plan_without_executing() {
        let store = sample_store();
        let report = store.explain(Q, EngineKind::TurboHomPlusPlus).unwrap();
        assert!(!report.analyzed);
        assert_eq!(report.store_flavor, "single");
        assert_eq!(report.plan_type, "graph");
        assert_eq!(report.components.len(), 1);
        let c = &report.components[0];
        assert_eq!(c.graph, "type-aware");
        // The type-aware transform folds the rdf:type pattern into ?x's
        // label set: 2 vertices, 1 edge.
        assert_eq!(c.vertices, 2);
        assert_eq!(c.edges, 1);
        assert!(c.note.is_none());
        let start = c.start.as_ref().unwrap();
        assert!(start.candidates > 0);
        // One step per query vertex, position 0 is the start vertex, every
        // step carries an estimate and no actuals.
        assert_eq!(c.steps.len(), 2);
        assert_eq!(c.steps[0].query_vertex, start.query_vertex);
        assert!(c.steps.iter().all(|s| s.estimate > 0));
        assert!(c
            .steps
            .iter()
            .all(|s| s.rows.is_none() && s.qerror.is_none()));
        assert!(report.actual.is_none());
        let json = report.to_json();
        assert!(json.contains("\"schema\":\"turbohom-explain/1\""));
        assert!(json.contains("\"mode\":\"explain\""));
        assert!(!json.contains("\"actual\""));
    }

    #[test]
    fn explain_notes_unsatisfiable_and_join_plans() {
        let store = sample_store();
        let gone = r#"PREFIX ub: <http://ub.org/>
                      SELECT ?x WHERE { ?x ub:nonexistent ?y . }"#;
        let report = store.explain(gone, EngineKind::TurboHomPlusPlus).unwrap();
        assert_eq!(report.components.len(), 1);
        assert!(report.components[0].note.unwrap().contains("unsatisfiable"));
        assert!(report.components[0].steps.is_empty());
        // Join baselines have no graph plan to explain.
        let join = store.explain(Q, EngineKind::MergeJoin).unwrap();
        assert_eq!(join.plan_type, "join");
        assert!(join.components.is_empty());
    }

    #[test]
    fn explain_reports_limit_pushdown_status() {
        let store = sample_store();
        let limited = format!("{Q} LIMIT 3");
        let report = store
            .explain(&limited, EngineKind::TurboHomPlusPlus)
            .unwrap();
        assert_eq!(report.limit, Some(3));
        assert!(report.limit_pushdown);
        let offset = format!("{Q} LIMIT 3 OFFSET 1");
        let report = store
            .explain(&offset, EngineKind::TurboHomPlusPlus)
            .unwrap();
        assert_eq!(report.limit, Some(3));
        assert!(!report.limit_pushdown);
    }

    #[test]
    fn analyze_attaches_per_step_actuals_and_qerror() {
        let store = sample_store();
        let (results, report) = store
            .analyze(Q, EngineKind::TurboHomPlusPlus, None)
            .unwrap();
        assert_eq!(results.len(), 10);
        assert!(report.analyzed);
        let c = &report.components[0];
        assert!(c.steps.iter().all(|s| s.rows.is_some()));
        assert!(c.steps.iter().all(|s| s.qerror.unwrap() >= 1.0));
        // The final step's actual equals the solution count for this query.
        assert_eq!(c.steps.last().unwrap().rows, Some(10));
        let actual = report.actual.as_ref().unwrap();
        assert_eq!(actual.solutions, 10);
        assert!(actual.max_qerror.unwrap() >= 1.0);
        assert_eq!(report.step_qerrors().len(), c.steps.len());
        let json = report.to_json();
        assert!(json.contains("\"mode\":\"analyze\""));
        assert!(json.contains("\"qerror\":"));
        assert!(json.contains("\"actual\":{"));
    }

    #[test]
    fn sharded_explain_names_the_deciding_check_per_shard() {
        let sharded = ShardedStore::from_dataset_with(
            sample_dataset(),
            ShardedOptions {
                shards: 4,
                inference: true,
                threads: 1,
                ..ShardedOptions::default()
            },
        )
        .unwrap();
        // Constant anchor: exactly one shard owns dept0, the rest are
        // routed away before their summaries are probed.
        let routed = r#"PREFIX ub: <http://ub.org/>
                        SELECT ?x WHERE { ?x ub:memberOf <http://ub.org/dept0> . }"#;
        let report = sharded
            .explain(routed, EngineKind::TurboHomPlusPlus)
            .unwrap();
        assert_eq!(report.store_flavor, "sharded");
        assert_eq!(report.shards.len(), 4);
        let routed_away: Vec<_> = report
            .shards
            .iter()
            .filter(|s| s.verdict == "routed-away")
            .collect();
        assert_eq!(routed_away.len(), 3);
        for s in &routed_away {
            assert_eq!(s.check, Some("ownership-route"));
            assert_eq!(s.term.as_deref(), Some("<http://ub.org/dept0>"));
        }
        let live: Vec<_> = report
            .shards
            .iter()
            .filter(|s| s.verdict == "live")
            .collect();
        assert_eq!(live.len(), 1);
        assert!(!live[0].components.is_empty());
        assert_eq!(report.anchor.as_deref(), Some("<http://ub.org/dept0>"));

        // An absent predicate: every shard is pruned by the exact predicate
        // check, and the verdict names the term.
        let gone = r#"PREFIX ub: <http://ub.org/>
                      SELECT ?x WHERE { ?x ub:nonexistent ?y . }"#;
        let report = sharded.explain(gone, EngineKind::TurboHomPlusPlus).unwrap();
        for s in &report.shards {
            assert_eq!(s.verdict, "pruned");
            assert_eq!(s.check, Some("predicate"));
            assert_eq!(s.probe, Some("exact"));
            assert_eq!(s.term.as_deref(), Some("<http://ub.org/nonexistent>"));
        }
        let json = report.to_json();
        assert!(json.contains("\"verdict\":\"pruned\""));
        assert!(json.contains("\"check\":\"predicate\""));
    }

    #[test]
    fn sharded_analyze_reports_per_shard_rows_and_false_lives() {
        let sharded = ShardedStore::from_dataset_with(
            sample_dataset(),
            ShardedOptions {
                shards: 3,
                inference: true,
                threads: 1,
                ..ShardedOptions::default()
            },
        )
        .unwrap();
        let (results, report) = sharded
            .analyze(Q, EngineKind::TurboHomPlusPlus, None)
            .unwrap();
        assert_eq!(results.len(), 10);
        // Every live shard got a row count; their sum is the result size
        // (the ownership filter makes the shard rows a partition).
        let live: Vec<_> = report
            .shards
            .iter()
            .filter(|s| s.verdict == "live")
            .collect();
        assert!(!live.is_empty());
        let total: u64 = live.iter().map(|s| s.rows.unwrap()).sum();
        assert_eq!(total, 10);
        // false_live is set for every live shard, and counted in the summary.
        let false_lives = live.iter().filter(|s| s.false_live == Some(true)).count() as u64;
        assert_eq!(report.false_live_shards(), false_lives);
        assert!(report.actual.is_some());
    }

    #[test]
    fn any_store_dispatches_explain_and_analyze() {
        let single = AnyStore::Single(Arc::new(sample_store()));
        let sharded = AnyStore::Sharded(Arc::new(
            ShardedStore::from_dataset_with(
                sample_dataset(),
                ShardedOptions {
                    shards: 2,
                    inference: true,
                    threads: 1,
                    ..ShardedOptions::default()
                },
            )
            .unwrap(),
        ));
        assert_eq!(single.flavor_name(), "single");
        assert_eq!(sharded.flavor_name(), "sharded");
        for store in [&single, &sharded] {
            let report = store.explain(Q, EngineKind::TurboHomPlusPlus).unwrap();
            assert_eq!(report.store_flavor, store.flavor_name());
            let (results, report) = store
                .analyze(Q, EngineKind::TurboHomPlusPlus, None)
                .unwrap();
            assert_eq!(results.len(), 10);
            assert!(report.analyzed);
        }
    }

    #[test]
    fn qerror_is_symmetric_and_zero_guarded() {
        assert_eq!(qerror(10, 10), 1.0);
        assert_eq!(qerror(100, 10), 10.0);
        assert_eq!(qerror(10, 100), 10.0);
        assert_eq!(qerror(0, 0), 1.0);
        assert_eq!(qerror(0, 5), 5.0);
        assert_eq!(qerror(5, 0), 5.0);
    }
}
