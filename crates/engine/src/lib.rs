//! The high-level store API tying the whole system together.
//!
//! A [`Store`] owns one RDF dataset and every derived structure the engines
//! need: the type-aware and direct labeled graphs with their indexes (for
//! the TurboHOM++ / TurboHOM engines) and the six permutation indexes (for
//! the join-based baselines). A SPARQL query can then be executed with any
//! [`EngineKind`] and returns uniform [`QueryResults`], which is what the
//! examples, the cross-engine correctness tests and the benchmark harness
//! build on.

pub mod error;
pub mod results;
pub mod store;

pub use error::StoreError;
pub use results::{QueryResults, ResultRow};
pub use store::{EngineKind, PreparedQuery, Store, StoreOptions};
