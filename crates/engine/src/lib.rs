//! The high-level store API tying the whole system together.
//!
//! A [`Store`] owns one RDF dataset and every derived structure the engines
//! need: the type-aware and direct labeled graphs with their indexes (for
//! the TurboHOM++ / TurboHOM engines) and the six permutation indexes (for
//! the join-based baselines). A SPARQL query can then be executed with any
//! [`EngineKind`] and returns uniform [`QueryResults`], which is what the
//! examples, the cross-engine correctness tests and the benchmark harness
//! build on.

pub mod backend;
pub mod error;
pub mod explain;
pub mod plan;
pub mod results;
pub mod sharded;
pub mod store;

pub use backend::{HeapBackend, SnapshotBackend, StorageBackend};
pub use error::StoreError;
pub use explain::{
    qerror, ActualSummary, ComponentExplain, ExplainReport, ShardExplain, StartExplain,
    StepExplain, EXPLAIN_SCHEMA,
};
pub use plan::QueryPlan;
pub use results::{json_escape, QueryResults, ResultRow};
pub use sharded::{AnyPlan, AnyStore, ShardedOptions, ShardedPlan, ShardedStore};
pub use store::{EngineKind, ParseEngineKindError, PreparedQuery, Store, StoreOptions};
// Re-exported so callers configuring a sharded store (the server's flag
// parsing, the bench harness) need no direct partition dependency.
pub use turbohom_partition::{Anchor, PartitionerKind, DEFAULT_HALO};
// Re-exported so harnesses consuming `QueryResults::stats` (the benchmark
// flight recorder, the service metrics) need no direct core dependency.
pub use turbohom_core::MatchStats;
// Re-exported so callers matching on `StoreError::Snapshot` (the server's
// startup diagnostics, the corruption tests) need no direct storage
// dependency.
pub use turbohom_storage::SnapshotError;
// Re-exported so callers of `execute_traced` / the `*_traced` plan methods
// (the service, the benchmark recorder) need no direct trace dependency.
pub use turbohom_trace::{format_trace_id, SpanId, SpanRecord, Trace, TraceReport};

/// Compile-time proof that the shared-service types can cross threads: a
/// `QueryService` hands `Arc<Store>` and cached `Arc<QueryPlan>`s to every
/// worker, which is only sound if they are `Send + Sync`. Adding interior
/// mutability (`Rc`, `RefCell`, raw pointers…) anywhere inside them turns
/// this into a build error rather than a runtime surprise.
const fn assert_send_sync<T: Send + Sync>() {}
const _: () = {
    assert_send_sync::<Store>();
    assert_send_sync::<QueryPlan>();
    assert_send_sync::<QueryResults>();
    assert_send_sync::<StoreError>();
    assert_send_sync::<ShardedStore>();
    assert_send_sync::<ShardedPlan>();
    assert_send_sync::<AnyStore>();
    assert_send_sync::<AnyPlan>();
};
