//! Prepared execution plans: the parse + transform half of query execution,
//! split from the run half.
//!
//! [`Store::execute`] does three jobs per call: parse the SPARQL text,
//! transform every union-free branch into a query graph, and enumerate
//! matches. The first two depend only on the (immutable) store and the query
//! text, so a service that answers the same queries over and over can do
//! them once, keep the resulting [`QueryPlan`], and jump straight to
//! enumeration on every later request — this is what the `turbohom-service`
//! plan cache stores under a normalized query fingerprint.
//!
//! A plan additionally memoizes the TurboHOM++ *matching order* (paper
//! Section 4.3, `+REUSE`): the first run computes it from the first
//! non-empty candidate region and parks it in the plan, so warm runs skip
//! order determination as well (`MatchStats::matching_orders_computed == 0`).
//!
//! Plans are `Send + Sync` (asserted at compile time in `lib.rs`) and can be
//! run concurrently from many threads against the store that prepared them.

use crate::error::StoreError;
use crate::results::{QueryResults, ResultRow};
use crate::store::{branch_needs_direct, collect_filters, split_components, EngineKind, Store};
use parking_lot::Mutex;
use std::sync::Arc;
use std::time::Instant;
use turbohom_baseline::JoinStrategy;
use turbohom_core::{merge_step_counts, MatchStats, MatchingOrder, TurboHomConfig, TurboHomEngine};
use turbohom_sparql::{EvalContext, Expression, GroupPattern, Query};
use turbohom_trace::{SpanId, Trace};
use turbohom_transform::{TransformKind, TransformedQuery};

/// A fully prepared query: parsed, union-expanded, component-split and
/// transformed for one [`EngineKind`] against one [`Store`].
pub struct QueryPlan {
    kind: EngineKind,
    projected: Vec<String>,
    /// `LIMIT` pushed down from the query (only when no `OFFSET` shifts the
    /// window): the graph engines stop enumerating once this many solutions
    /// exist, the join baselines truncate their result.
    limit: Option<usize>,
    mode: PlanMode,
}

pub(crate) enum PlanMode {
    /// The graph-matching engines (TurboHOM++ / TurboHOM): pre-transformed
    /// branches plus the engine configuration.
    Graph {
        config: TurboHomConfig,
        branches: Vec<BranchPlan>,
    },
    /// The join baselines evaluate the algebra directly; preparing them
    /// means having parsed the query.
    Join {
        query: Query,
        strategy: JoinStrategy,
    },
}

/// One union-free branch of the query.
pub(crate) struct BranchPlan {
    /// The connected components of the branch's required BGP (almost always
    /// exactly one).
    components: Vec<ComponentPlan>,
    /// Branch filters re-applied after the cartesian combination; only used
    /// when there is more than one component (`split_components` drops them
    /// from the per-component groups).
    filters: Vec<Expression>,
}

/// One connected component: a transformed query graph ready to match.
pub(crate) struct ComponentPlan {
    /// Match over the direct graph instead of the type-aware one.
    use_direct: bool,
    transformed: TransformedQuery,
    /// The component's own variables (its output columns when the branch has
    /// several components; empty for single-component branches, which render
    /// straight onto the projection).
    vars: Vec<String>,
    /// The `+REUSE` matching order memoized by the first run (`Arc` so the
    /// warm path clones a pointer, not the order itself).
    cached_order: Mutex<Option<Arc<MatchingOrder>>>,
}

impl QueryPlan {
    /// The engine this plan was prepared for.
    pub fn kind(&self) -> EngineKind {
        self.kind
    }

    /// The projected variable names, in output order.
    pub fn projected_variables(&self) -> &[String] {
        &self.projected
    }

    /// The `LIMIT` pushed into the enumerator, if any. `None` either means
    /// the query has no `LIMIT` or that an `OFFSET` prevents the pushdown
    /// (skipped rows must still be enumerated).
    pub fn limit(&self) -> Option<usize> {
        self.limit
    }

    /// Number of transformed connected components across all branches
    /// (`0` for join-baseline plans).
    pub fn component_count(&self) -> usize {
        match &self.mode {
            PlanMode::Graph { branches, .. } => branches.iter().map(|b| b.components.len()).sum(),
            PlanMode::Join { .. } => 0,
        }
    }

    /// Number of components whose matching order is currently memoized.
    /// `component_count()` of them after the first run, `0` before.
    pub fn cached_order_count(&self) -> usize {
        match &self.mode {
            PlanMode::Graph { branches, .. } => branches
                .iter()
                .flat_map(|b| &b.components)
                .filter(|c| c.cached_order.lock().is_some())
                .count(),
            PlanMode::Join { .. } => 0,
        }
    }

    /// The graph-engine half of the plan: the TurboHOM configuration and the
    /// transformed branches (`None` for join-baseline plans). The EXPLAIN
    /// builder walks these without executing anything.
    pub(crate) fn graph_parts(&self) -> Option<(&TurboHomConfig, &[BranchPlan])> {
        match &self.mode {
            PlanMode::Graph { config, branches } => Some((config, branches)),
            PlanMode::Join { .. } => None,
        }
    }

    /// The join strategy (`None` for graph-engine plans).
    pub(crate) fn join_strategy(&self) -> Option<JoinStrategy> {
        match &self.mode {
            PlanMode::Graph { .. } => None,
            PlanMode::Join { strategy, .. } => Some(*strategy),
        }
    }
}

impl BranchPlan {
    /// The branch's connected components.
    pub(crate) fn components(&self) -> &[ComponentPlan] {
        &self.components
    }
}

impl ComponentPlan {
    /// `true` when the component matches over the direct graph.
    pub(crate) fn use_direct(&self) -> bool {
        self.use_direct
    }

    /// The transformed query graph of this component.
    pub(crate) fn transformed(&self) -> &TransformedQuery {
        &self.transformed
    }
}

impl Store {
    /// Parses a SPARQL query and builds the full execution plan for `kind`.
    pub fn prepare_plan(&self, sparql: &str, kind: EngineKind) -> Result<QueryPlan, StoreError> {
        self.prepare_plan_traced(sparql, kind, &Trace::disabled())
    }

    /// Like [`prepare_plan`](Self::prepare_plan), recording a `parse` and a
    /// `transform` stage span into `trace`.
    pub fn prepare_plan_traced(
        &self,
        sparql: &str,
        kind: EngineKind,
        trace: &Trace,
    ) -> Result<QueryPlan, StoreError> {
        let query = {
            let _span = trace.span("parse");
            turbohom_sparql::parse_query(sparql)?
        };
        let mut span = trace.span("transform");
        let plan = self.plan_query(&query, kind)?;
        span.counter("components", plan.component_count() as u64);
        span.finish();
        Ok(plan)
    }

    /// Builds the execution plan for an already parsed query. Only the
    /// join-baseline plans keep a copy of the algebra; the graph-engine
    /// plans borrow it just long enough to transform the branches.
    pub fn plan_query(&self, query: &Query, kind: EngineKind) -> Result<QueryPlan, StoreError> {
        let projected = query.projected_variables();
        // LIMIT is only pushed into the enumerator when no OFFSET shifts the
        // result window — skipped rows still have to be enumerated. (No
        // engine applies DISTINCT or ORDER BY, so early termination cannot
        // change which rows survive.)
        let limit = match query.offset {
            None | Some(0) => query.limit,
            Some(_) => None,
        };
        let mode = match kind {
            EngineKind::TurboHomPlusPlus => PlanMode::Graph {
                config: self.default_config(),
                branches: self.plan_branches(query, false)?,
            },
            EngineKind::TurboHom => PlanMode::Graph {
                config: TurboHomConfig::turbohom(),
                branches: self.plan_branches(query, true)?,
            },
            EngineKind::MergeJoin => PlanMode::Join {
                query: query.clone(),
                strategy: JoinStrategy::SortMerge,
            },
            EngineKind::HashJoin => PlanMode::Join {
                query: query.clone(),
                strategy: JoinStrategy::Hash,
            },
        };
        Ok(QueryPlan {
            kind,
            projected,
            limit,
            mode,
        })
    }

    /// Runs a prepared plan with its built-in configuration.
    pub fn run_plan(&self, plan: &QueryPlan) -> Result<QueryResults, StoreError> {
        self.run_plan_with(plan, None)
    }

    /// Runs a prepared plan, optionally overriding the worker-thread count
    /// for this run only (the join baselines are single-threaded and ignore
    /// the override).
    pub fn run_plan_with(
        &self,
        plan: &QueryPlan,
        threads: Option<usize>,
    ) -> Result<QueryResults, StoreError> {
        self.run_plan_traced(plan, threads, &Trace::disabled())
    }

    /// Like [`run_plan_with`](Self::run_plan_with), recording an `execute`
    /// stage span into `trace`. With a [detailed](Trace::is_detailed) trace
    /// the matching engine additionally records `candidate_regions`,
    /// `matching_order`, `enumeration` and per-worker spans as children of
    /// the `execute` span (the join baselines only get the `execute` span).
    pub fn run_plan_traced(
        &self,
        plan: &QueryPlan,
        threads: Option<usize>,
        trace: &Trace,
    ) -> Result<QueryResults, StoreError> {
        if threads == Some(0) {
            return Err(StoreError::InvalidThreadCount(0));
        }
        let mut span = trace.span("execute");
        let parent = span.id();
        let result = match &plan.mode {
            PlanMode::Graph { config, branches } => {
                let config = match threads {
                    Some(t) => config.with_threads(t),
                    None => *config,
                };
                self.run_graph_plan_limited(
                    branches,
                    config,
                    plan.projected.clone(),
                    plan.limit,
                    trace,
                    parent,
                )
            }
            PlanMode::Join { query, strategy } => {
                let mut results = self.run_baseline(query, *strategy);
                if let Some(limit) = plan.limit {
                    results.rows.truncate(limit);
                    results.solution_count = results.solution_count.min(limit);
                }
                Ok(results)
            }
        };
        // Canonical row order: without a pushed-down LIMIT the full solution
        // multiset is enumerated, so sorting makes the output independent of
        // enumeration order — parallel morsel scheduling and sharded
        // scatter-gather merge then produce byte-identical SPARQL-JSON to a
        // single-threaded single-store run. (Under a LIMIT the engines stop
        // early and any subset is a valid answer, so no order is imposed.)
        let result = result.map(|mut results| {
            if plan.limit.is_none() {
                results.rows.sort_unstable();
            }
            results
        });
        if let Ok(results) = &result {
            span.counter("solutions", results.solution_count as u64);
            span.counter("rows", results.rows.len() as u64);
        }
        span.finish();
        result
    }

    /// Expands the query's unions and transforms every branch (the prepare
    /// half of `execute_turbohom`).
    pub(crate) fn plan_branches(
        &self,
        query: &Query,
        force_direct: bool,
    ) -> Result<Vec<BranchPlan>, StoreError> {
        let mut branches = Vec::new();
        for branch in query.pattern.expand_unions() {
            let components = split_components(&branch);
            if components.len() <= 1 {
                branches.push(BranchPlan {
                    components: vec![self.plan_component(&branch, force_direct, Vec::new())?],
                    filters: Vec::new(),
                });
            } else {
                let components = components
                    .iter()
                    .map(|c| self.plan_component(c, force_direct, c.all_variables()))
                    .collect::<Result<Vec<_>, _>>()?;
                branches.push(BranchPlan {
                    components,
                    filters: collect_filters(&branch),
                });
            }
        }
        Ok(branches)
    }

    /// Transforms one connected, union-free group.
    fn plan_component(
        &self,
        group: &GroupPattern,
        force_direct: bool,
        vars: Vec<String>,
    ) -> Result<ComponentPlan, StoreError> {
        let use_direct = force_direct || branch_needs_direct(group);
        let (graph, transformed) = self.transform_branch(group, use_direct)?;
        Ok(ComponentPlan {
            // `transform_branch` may have fallen back to the direct graph.
            use_direct: graph.kind == TransformKind::Direct,
            transformed,
            vars,
            cached_order: Mutex::new(None),
        })
    }

    /// Runs pre-transformed branches (the run half of `execute_turbohom`).
    /// The reported `elapsed` covers pattern matching and result rendering
    /// only — parsing and transformation happened at plan time.
    pub(crate) fn run_graph_plan(
        &self,
        branches: &[BranchPlan],
        config: TurboHomConfig,
        projected: Vec<String>,
    ) -> Result<QueryResults, StoreError> {
        self.run_graph_plan_limited(branches, config, projected, None, &Trace::disabled(), None)
    }

    /// Like [`run_graph_plan`](Self::run_graph_plan), with a pushed-down
    /// `LIMIT`: each branch only enumerates the solutions still missing, and
    /// the branch loop stops as soon as the limit is reached.
    pub(crate) fn run_graph_plan_limited(
        &self,
        branches: &[BranchPlan],
        config: TurboHomConfig,
        projected: Vec<String>,
        limit: Option<usize>,
        trace: &Trace,
        parent: Option<SpanId>,
    ) -> Result<QueryResults, StoreError> {
        let start = Instant::now();
        let mut rows: Vec<ResultRow> = Vec::new();
        let mut count = 0usize;
        let mut stats = MatchStats::default();
        let mut step_rows: Vec<u64> = Vec::new();
        let mut step_estimates: Vec<u64> = Vec::new();
        for branch in branches {
            let remaining = limit.map(|l| l.saturating_sub(count));
            if remaining == Some(0) {
                break;
            }
            let mut partial =
                self.run_branch_plan(branch, config, &projected, remaining, trace, parent)?;
            rows.append(&mut partial.rows);
            count += partial.count;
            stats.merge(&partial.stats);
            merge_step_counts(&mut step_rows, &partial.step_rows);
            merge_step_counts(&mut step_estimates, &partial.step_estimates);
        }
        Ok(QueryResults {
            variables: projected,
            rows,
            solution_count: count,
            elapsed: start.elapsed(),
            stats,
            step_rows,
            step_estimates,
        })
    }

    /// Runs one branch. Connected branches go straight to the matching
    /// engine; a branch whose required BGP falls apart into several
    /// connected components (e.g. BSBM Q5, which compares two unrelated
    /// products through a FILTER) is evaluated component by component, the
    /// partial results are combined by a cartesian product, and the branch
    /// filters are applied to the combined rows.
    fn run_branch_plan(
        &self,
        branch: &BranchPlan,
        config: TurboHomConfig,
        projected: &[String],
        limit: Option<usize>,
        trace: &Trace,
        parent: Option<SpanId>,
    ) -> Result<PartialRun, StoreError> {
        if let [component] = branch.components.as_slice() {
            // Single connected component: the limit goes straight into the
            // enumerator as a solution cap, so search stops early.
            let config = match limit {
                Some(l) => TurboHomConfig {
                    max_solutions: Some(config.max_solutions.map_or(l, |m| m.min(l))),
                    ..config
                },
                None => config,
            };
            return self.run_component_plan(component, config, projected, trace, parent);
        }
        // Evaluate each component over its own variables.
        let mut partials: Vec<(&[String], Vec<ResultRow>)> = Vec::new();
        let mut stats = MatchStats::default();
        let mut step_rows: Vec<u64> = Vec::new();
        let mut step_estimates: Vec<u64> = Vec::new();
        for component in &branch.components {
            let partial =
                self.run_component_plan(component, config, &component.vars, trace, parent)?;
            stats.merge(&partial.stats);
            merge_step_counts(&mut step_rows, &partial.step_rows);
            merge_step_counts(&mut step_estimates, &partial.step_estimates);
            partials.push((&component.vars, partial.rows));
        }
        // Cartesian product of the component results.
        let all_vars: Vec<String> = partials
            .iter()
            .flat_map(|(v, _)| v.iter().cloned())
            .collect();
        let mut combined: Vec<ResultRow> = vec![Vec::new()];
        for (_, rows) in &partials {
            let mut next = Vec::with_capacity(combined.len() * rows.len());
            for prefix in &combined {
                for row in rows {
                    let mut r = prefix.clone();
                    r.extend(row.iter().cloned());
                    next.push(r);
                }
            }
            combined = next;
            if combined.is_empty() {
                break;
            }
        }
        // Apply the branch filters over the combined rows.
        let filtered: Vec<ResultRow> = combined
            .into_iter()
            .filter(|row| {
                let mut ctx = EvalContext::new();
                for (var, term) in all_vars.iter().zip(row.iter()) {
                    if let Some(term) = term {
                        ctx.insert(var.clone(), term.clone());
                    }
                }
                branch.filters.iter().all(|f| f.evaluate_bool(&ctx))
            })
            .collect();
        // Project onto the requested variables.
        let indices: Vec<Option<usize>> = projected
            .iter()
            .map(|v| all_vars.iter().position(|x| x == v))
            .collect();
        let mut rows: Vec<ResultRow> = filtered
            .iter()
            .map(|row| {
                indices
                    .iter()
                    .map(|i| i.and_then(|i| row[i].clone()))
                    .collect()
            })
            .collect();
        // A limit cannot be pushed below the cartesian combination (dropping
        // partial rows early would drop combinations), so it applies here.
        if let Some(l) = limit {
            rows.truncate(l);
        }
        let count = rows.len();
        Ok(PartialRun {
            rows,
            count,
            stats,
            step_rows,
            step_estimates,
        })
    }

    /// Runs one transformed component, reusing (or memoizing) its matching
    /// order, and renders the result rows over `out_vars`.
    fn run_component_plan(
        &self,
        component: &ComponentPlan,
        config: TurboHomConfig,
        out_vars: &[String],
        trace: &Trace,
        parent: Option<SpanId>,
    ) -> Result<PartialRun, StoreError> {
        let graph = if component.use_direct {
            self.direct_graph()
        } else {
            self.type_aware_graph()
        };
        let engine = TurboHomEngine::new(graph, &self.dataset().dictionary, config);
        let preset = component.cached_order.lock().clone();
        let (result, computed) = engine.execute_with_order_traced(
            &component.transformed,
            preset.as_deref(),
            trace,
            parent,
        )?;
        if let Some(order) = computed {
            let mut slot = component.cached_order.lock();
            if slot.is_none() {
                *slot = Some(Arc::new(order));
            }
        }
        let mut rows = Vec::new();
        self.append_rows(&mut rows, graph, &component.transformed, &result, out_vars);
        Ok(PartialRun {
            rows,
            count: result.solution_count,
            stats: result.stats,
            step_rows: result.step_rows,
            step_estimates: result.step_estimates,
        })
    }
}

/// The intermediate result of one branch or component run: the rendered
/// rows plus every counter the merged [`QueryResults`] accumulates.
struct PartialRun {
    rows: Vec<ResultRow>,
    count: usize,
    stats: MatchStats,
    step_rows: Vec<u64>,
    step_estimates: Vec<u64>,
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::store::StoreOptions;
    use turbohom_rdf::{vocab, Dataset};

    fn ub(l: &str) -> String {
        format!("http://ub.org/{l}")
    }

    fn sample_store() -> Store {
        let mut ds = Dataset::new();
        ds.insert_iris(
            &ub("GraduateStudent"),
            vocab::RDFS_SUBCLASSOF,
            &ub("Student"),
        );
        for i in 0..4 {
            let s = ub(&format!("student{i}"));
            ds.insert_iris(&s, vocab::RDF_TYPE, &ub("GraduateStudent"));
            ds.insert_iris(&s, &ub("memberOf"), &ub("dept0"));
        }
        ds.insert_iris(&ub("dept0"), vocab::RDF_TYPE, &ub("Department"));
        ds.insert_iris(&ub("dept0"), &ub("subOrganizationOf"), &ub("univ0"));
        ds.insert_iris(&ub("univ0"), vocab::RDF_TYPE, &ub("University"));
        Store::from_dataset_with(
            ds,
            StoreOptions {
                inference: true,
                threads: 1,
            },
        )
    }

    const Q: &str = r#"PREFIX rdf: <http://www.w3.org/1999/02/22-rdf-syntax-ns#>
                       PREFIX ub: <http://ub.org/>
                       SELECT ?x ?d WHERE { ?x rdf:type ub:Student . ?x ub:memberOf ?d . }"#;

    #[test]
    fn plans_run_like_execute_for_every_engine() {
        let store = sample_store();
        for kind in EngineKind::all() {
            let plan = store.prepare_plan(Q, kind).unwrap();
            assert_eq!(plan.kind(), kind);
            assert_eq!(plan.projected_variables(), ["x", "d"]);
            let direct = store.execute(Q, kind).unwrap();
            let planned = store.run_plan(&plan).unwrap();
            assert_eq!(planned.len(), direct.len());
            assert_eq!(planned.rows, direct.rows);
        }
    }

    #[test]
    fn first_run_memoizes_the_matching_order() {
        let store = sample_store();
        let plan = store.prepare_plan(Q, EngineKind::TurboHomPlusPlus).unwrap();
        assert_eq!(plan.component_count(), 1);
        assert_eq!(plan.cached_order_count(), 0);
        let cold = store.run_plan(&plan).unwrap();
        assert_eq!(plan.cached_order_count(), 1);
        let warm = store.run_plan(&plan).unwrap();
        assert_eq!(warm.rows, cold.rows);
        // The cached order survives a thread override.
        let threaded = store.run_plan_with(&plan, Some(4)).unwrap();
        assert_eq!(threaded.len(), cold.len());
    }

    #[test]
    fn join_plans_have_no_graph_components() {
        let store = sample_store();
        let plan = store.prepare_plan(Q, EngineKind::MergeJoin).unwrap();
        assert_eq!(plan.component_count(), 0);
        assert_eq!(plan.cached_order_count(), 0);
        assert_eq!(store.run_plan(&plan).unwrap().len(), 4);
    }

    #[test]
    fn multi_component_branch_plan_combines_components() {
        let store = sample_store();
        // Two unrelated patterns joined by a FILTER — two components.
        let q = r#"PREFIX rdf: <http://www.w3.org/1999/02/22-rdf-syntax-ns#>
                   PREFIX ub: <http://ub.org/>
                   SELECT ?a ?b WHERE {
                     ?a rdf:type ub:Department . ?b rdf:type ub:University .
                     FILTER (?a != ?b)
                   }"#;
        let plan = store.prepare_plan(q, EngineKind::TurboHomPlusPlus).unwrap();
        assert_eq!(plan.component_count(), 2);
        let r = store.run_plan(&plan).unwrap();
        assert_eq!(r.len(), 1);
        assert_eq!(
            r.rows,
            store.execute(q, EngineKind::TurboHomPlusPlus).unwrap().rows
        );
        // Both component orders get memoized on the first run.
        assert_eq!(plan.cached_order_count(), 2);
    }

    #[test]
    fn limit_is_pushed_into_the_plan_and_enforced() {
        let store = sample_store();
        let q = format!("{Q} LIMIT 2");
        for kind in EngineKind::all() {
            let plan = store.prepare_plan(&q, kind).unwrap();
            assert_eq!(plan.limit(), Some(2), "{kind}");
            let r = store.run_plan(&plan).unwrap();
            assert_eq!(r.rows.len(), 2, "{kind}");
            assert_eq!(r.solution_count, 2, "{kind}");
        }
    }

    #[test]
    fn offset_disables_the_limit_pushdown() {
        let store = sample_store();
        let q = format!("{Q} LIMIT 2 OFFSET 1");
        let plan = store
            .prepare_plan(&q, EngineKind::TurboHomPlusPlus)
            .unwrap();
        assert_eq!(plan.limit(), None);
        // Without the pushdown all solutions are enumerated (the window is
        // applied by the caller once OFFSET is involved).
        assert_eq!(store.run_plan(&plan).unwrap().rows.len(), 4);
        // OFFSET 0 does not shift the window, so the pushdown stays on.
        let q0 = format!("{Q} LIMIT 3 OFFSET 0");
        let plan0 = store
            .prepare_plan(&q0, EngineKind::TurboHomPlusPlus)
            .unwrap();
        assert_eq!(plan0.limit(), Some(3));
    }

    #[test]
    fn limit_larger_than_result_is_harmless() {
        let store = sample_store();
        let q = format!("{Q} LIMIT 100");
        for kind in EngineKind::all() {
            let r = store.execute(&q, kind).unwrap();
            assert_eq!(r.rows.len(), 4, "{kind}");
        }
    }

    #[test]
    fn limit_applies_to_multi_component_branches() {
        let store = sample_store();
        // Two unrelated patterns: 4 students × 1 university = 4 combined rows.
        let q = r#"PREFIX rdf: <http://www.w3.org/1999/02/22-rdf-syntax-ns#>
                   PREFIX ub: <http://ub.org/>
                   SELECT ?a ?b WHERE {
                     ?a rdf:type ub:Student . ?b rdf:type ub:University .
                   } LIMIT 2"#;
        let plan = store.prepare_plan(q, EngineKind::TurboHomPlusPlus).unwrap();
        assert_eq!(plan.component_count(), 2);
        let r = store.run_plan(&plan).unwrap();
        assert_eq!(r.rows.len(), 2);
        assert_eq!(r.solution_count, 2);
    }

    #[test]
    fn zero_thread_override_is_a_typed_error() {
        let store = sample_store();
        for kind in EngineKind::all() {
            let plan = store.prepare_plan(Q, kind).unwrap();
            assert!(matches!(
                store.run_plan_with(&plan, Some(0)),
                Err(StoreError::InvalidThreadCount(0))
            ));
        }
    }

    #[test]
    fn plan_errors_match_execute_errors() {
        let store = sample_store();
        assert!(store
            .prepare_plan("SELECT WHERE", EngineKind::TurboHomPlusPlus)
            .is_err());
    }
}
