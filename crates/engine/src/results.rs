//! Uniform query results across all engines.

use std::collections::HashMap;
use std::time::Duration;
use turbohom_core::MatchStats;
use turbohom_rdf::Term;

/// One result row: the terms bound to the projected variables (in the order
/// of [`QueryResults::variables`]); `None` marks a variable left unbound by
/// an OPTIONAL clause.
pub type ResultRow = Vec<Option<Term>>;

/// The result of executing one SPARQL query.
#[derive(Debug, Clone, Default)]
pub struct QueryResults {
    /// The projected variable names (without `?`).
    pub variables: Vec<String>,
    /// The result rows (absent when the query ran in count-only mode).
    pub rows: Vec<ResultRow>,
    /// The number of solutions (equals `rows.len()` unless count-only).
    pub solution_count: usize,
    /// Wall-clock execution time of the pattern matching and result
    /// rendering. Parsing, query-graph transformation and dictionary
    /// decoding are excluded — they happen at plan-preparation time
    /// (mirroring the paper's protocol of timing only query processing,
    /// and making cold and warm plan-cache runs report comparable numbers).
    pub elapsed: Duration,
    /// Per-stage execution counters of the graph engines, merged across all
    /// branches and worker threads (all-zero for the join baselines, which
    /// do not run the matcher). The benchmark flight recorder persists these
    /// alongside the timings.
    pub stats: MatchStats,
    /// Per matching-order position: partial mappings extended at that step,
    /// merged across branches, components, workers and shards (empty for the
    /// join baselines). The ANALYZE actuals.
    pub step_rows: Vec<u64>,
    /// Per matching-order position: the candidate-count estimates that
    /// justified the order (`|CR(u)|` summed over explored regions). Same
    /// length as [`step_rows`](QueryResults::step_rows); the q-error inputs.
    pub step_estimates: Vec<u64>,
}

impl QueryResults {
    /// Number of solutions.
    pub fn len(&self) -> usize {
        self.solution_count
    }

    /// Returns `true` if the query produced no solutions.
    pub fn is_empty(&self) -> bool {
        self.solution_count == 0
    }

    /// Iterates the rows as variable → term maps (unbound variables absent).
    pub fn iter_bindings(&self) -> impl Iterator<Item = HashMap<&str, &Term>> + '_ {
        self.rows.iter().map(move |row| {
            self.variables
                .iter()
                .zip(row.iter())
                .filter_map(|(v, t)| t.as_ref().map(|t| (v.as_str(), t)))
                .collect()
        })
    }

    /// The values bound to `variable` across all rows (unbound skipped).
    pub fn column(&self, variable: &str) -> Vec<&Term> {
        match self.variables.iter().position(|v| v == variable) {
            Some(i) => self.rows.iter().filter_map(|r| r[i].as_ref()).collect(),
            None => Vec::new(),
        }
    }

    /// Serializes the results in the W3C SPARQL 1.1 Query Results JSON
    /// format (`application/sparql-results+json`): a `head.vars` list and
    /// one binding object per row, unbound variables omitted.
    pub fn to_sparql_json(&self) -> String {
        let mut out = String::with_capacity(64 + self.rows.len() * 64);
        out.push_str("{\"head\":{\"vars\":[");
        for (i, var) in self.variables.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            out.push('"');
            out.push_str(&json_escape(var));
            out.push('"');
        }
        out.push_str("]},\"results\":{\"bindings\":[");
        for (r, row) in self.rows.iter().enumerate() {
            if r > 0 {
                out.push(',');
            }
            out.push('{');
            let mut first = true;
            for (var, term) in self.variables.iter().zip(row.iter()) {
                let Some(term) = term else { continue };
                if !first {
                    out.push(',');
                }
                first = false;
                out.push('"');
                out.push_str(&json_escape(var));
                out.push_str("\":");
                append_term_json(&mut out, term);
            }
            out.push('}');
        }
        out.push_str("]}}");
        out
    }
}

/// Appends one RDF term as a SPARQL-JSON binding value object.
fn append_term_json(out: &mut String, term: &Term) {
    match term {
        Term::Iri(iri) => {
            out.push_str("{\"type\":\"uri\",\"value\":\"");
            out.push_str(&json_escape(iri));
            out.push_str("\"}");
        }
        Term::BlankNode(label) => {
            out.push_str("{\"type\":\"bnode\",\"value\":\"");
            out.push_str(&json_escape(label));
            out.push_str("\"}");
        }
        Term::Literal {
            lexical,
            datatype,
            language,
        } => {
            out.push_str("{\"type\":\"literal\",\"value\":\"");
            out.push_str(&json_escape(lexical));
            out.push('"');
            if let Some(lang) = language {
                out.push_str(",\"xml:lang\":\"");
                out.push_str(&json_escape(lang));
                out.push('"');
            }
            if let Some(dt) = datatype {
                out.push_str(",\"datatype\":\"");
                out.push_str(&json_escape(dt));
                out.push('"');
            }
            out.push('}');
        }
    }
}

/// Escapes a string for embedding in a JSON string literal.
pub fn json_escape(s: &str) -> String {
    let mut out = String::with_capacity(s.len());
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                out.push_str(&format!("\\u{:04x}", c as u32));
            }
            c => out.push(c),
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> QueryResults {
        QueryResults {
            variables: vec!["x".into(), "y".into()],
            rows: vec![
                vec![Some(Term::iri("http://a")), Some(Term::integer(1))],
                vec![Some(Term::iri("http://b")), None],
            ],
            solution_count: 2,
            elapsed: Duration::from_millis(1),
            ..Default::default()
        }
    }

    #[test]
    fn len_and_empty() {
        let r = sample();
        assert_eq!(r.len(), 2);
        assert!(!r.is_empty());
        assert!(QueryResults::default().is_empty());
    }

    #[test]
    fn bindings_skip_unbound() {
        let r = sample();
        let bindings: Vec<_> = r.iter_bindings().collect();
        assert_eq!(bindings[0].len(), 2);
        assert_eq!(bindings[1].len(), 1);
        assert_eq!(bindings[1]["x"], &Term::iri("http://b"));
    }

    #[test]
    fn column_extraction() {
        let r = sample();
        assert_eq!(r.column("x").len(), 2);
        assert_eq!(r.column("y").len(), 1);
        assert!(r.column("missing").is_empty());
    }

    #[test]
    fn sparql_json_serialization() {
        let r = sample();
        assert_eq!(
            r.to_sparql_json(),
            r#"{"head":{"vars":["x","y"]},"results":{"bindings":[{"x":{"type":"uri","value":"http://a"},"y":{"type":"literal","value":"1","datatype":"http://www.w3.org/2001/XMLSchema#integer"}},{"x":{"type":"uri","value":"http://b"}}]}}"#
        );
        assert_eq!(
            QueryResults::default().to_sparql_json(),
            r#"{"head":{"vars":[]},"results":{"bindings":[]}}"#
        );
    }

    #[test]
    fn sparql_json_covers_every_term_shape() {
        let r = QueryResults {
            variables: vec!["t".into()],
            rows: vec![
                vec![Some(Term::blank("b0"))],
                vec![Some(Term::lang_literal("hi \"there\"\n", "en"))],
            ],
            solution_count: 2,
            elapsed: Duration::ZERO,
            ..Default::default()
        };
        let json = r.to_sparql_json();
        assert!(json.contains(r#"{"type":"bnode","value":"b0"}"#));
        assert!(json.contains(r#"{"type":"literal","value":"hi \"there\"\n","xml:lang":"en"}"#));
    }

    #[test]
    fn json_escaping() {
        assert_eq!(json_escape("a\"b\\c\nd"), "a\\\"b\\\\c\\nd");
        assert_eq!(json_escape("\u{1}"), "\\u0001");
        assert_eq!(json_escape("plain ünïcode"), "plain ünïcode");
    }
}
