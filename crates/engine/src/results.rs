//! Uniform query results across all engines.

use std::collections::HashMap;
use std::time::Duration;
use turbohom_rdf::Term;

/// One result row: the terms bound to the projected variables (in the order
/// of [`QueryResults::variables`]); `None` marks a variable left unbound by
/// an OPTIONAL clause.
pub type ResultRow = Vec<Option<Term>>;

/// The result of executing one SPARQL query.
#[derive(Debug, Clone, Default)]
pub struct QueryResults {
    /// The projected variable names (without `?`).
    pub variables: Vec<String>,
    /// The result rows (absent when the query ran in count-only mode).
    pub rows: Vec<ResultRow>,
    /// The number of solutions (equals `rows.len()` unless count-only).
    pub solution_count: usize,
    /// Wall-clock execution time of the pattern matching (excludes parsing
    /// and dictionary decoding, mirroring the paper's measurement protocol).
    pub elapsed: Duration,
}

impl QueryResults {
    /// Number of solutions.
    pub fn len(&self) -> usize {
        self.solution_count
    }

    /// Returns `true` if the query produced no solutions.
    pub fn is_empty(&self) -> bool {
        self.solution_count == 0
    }

    /// Iterates the rows as variable → term maps (unbound variables absent).
    pub fn iter_bindings(&self) -> impl Iterator<Item = HashMap<&str, &Term>> + '_ {
        self.rows.iter().map(move |row| {
            self.variables
                .iter()
                .zip(row.iter())
                .filter_map(|(v, t)| t.as_ref().map(|t| (v.as_str(), t)))
                .collect()
        })
    }

    /// The values bound to `variable` across all rows (unbound skipped).
    pub fn column(&self, variable: &str) -> Vec<&Term> {
        match self.variables.iter().position(|v| v == variable) {
            Some(i) => self.rows.iter().filter_map(|r| r[i].as_ref()).collect(),
            None => Vec::new(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> QueryResults {
        QueryResults {
            variables: vec!["x".into(), "y".into()],
            rows: vec![
                vec![Some(Term::iri("http://a")), Some(Term::integer(1))],
                vec![Some(Term::iri("http://b")), None],
            ],
            solution_count: 2,
            elapsed: Duration::from_millis(1),
        }
    }

    #[test]
    fn len_and_empty() {
        let r = sample();
        assert_eq!(r.len(), 2);
        assert!(!r.is_empty());
        assert!(QueryResults::default().is_empty());
    }

    #[test]
    fn bindings_skip_unbound() {
        let r = sample();
        let bindings: Vec<_> = r.iter_bindings().collect();
        assert_eq!(bindings[0].len(), 2);
        assert_eq!(bindings[1].len(), 1);
        assert_eq!(bindings[1]["x"], &Term::iri("http://b"));
    }

    #[test]
    fn column_extraction() {
        let r = sample();
        assert_eq!(r.column("x").len(), 2);
        assert_eq!(r.column("y").len(), 1);
        assert!(r.column("missing").is_empty());
    }
}
