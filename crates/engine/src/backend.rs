//! The pluggable storage layer: every read path of the engines goes through
//! a [`StorageBackend`], so the matcher code is agnostic to whether the
//! dataset and its derived indexes live in owned heap memory
//! ([`HeapBackend`]) or are zero-copy views into a memory-mapped snapshot
//! file ([`SnapshotBackend`]).

use crate::error::StoreError;
use crate::store::StoreOptions;
use std::path::{Path, PathBuf};
use turbohom_baseline::PermutationIndexes;
use turbohom_rdf::{Dataset, InferenceConfig, InferenceEngine};
use turbohom_storage::{Snapshot, SnapshotWriter};
use turbohom_transform::{direct_transform, type_aware_transform, TransformedGraph};

/// Engine-level snapshot meta section: format sub-version, inference flag,
/// triple count (component 0x09; the component sections of the dataset,
/// graphs and permutations follow).
const TAG_STORE_META: u64 = 0x0901;

/// The store-level snapshot format sub-version. Bumped when the *composition*
/// of component sections changes (the components themselves version their
/// sections through their tags).
const STORE_FORMAT_SUB_VERSION: u64 = 1;

/// Everything a [`Store`](crate::Store) reads: the dataset plus every derived
/// structure the engines need.
pub(crate) struct BackendData {
    pub dataset: Dataset,
    pub type_aware: TransformedGraph,
    pub direct: TransformedGraph,
    pub permutations: PermutationIndexes,
}

impl BackendData {
    /// Builds every derived structure from a dataset (materializing the RDFS
    /// closure first when `inference` is set).
    fn build(mut dataset: Dataset, inference: bool) -> Self {
        if inference {
            InferenceEngine::new(InferenceConfig::full()).materialize(&mut dataset);
        }
        let type_aware = type_aware_transform(&dataset);
        let direct = direct_transform(&dataset);
        let permutations = PermutationIndexes::build(&dataset);
        BackendData {
            dataset,
            type_aware,
            direct,
            permutations,
        }
    }
}

/// Uniform read access to a store's data, regardless of where it lives.
///
/// `Send + Sync` so services can share a store behind an `Arc` across worker
/// threads with either backend.
pub trait StorageBackend: Send + Sync {
    /// Short machine-readable backend name (`"heap"` or `"snapshot"`),
    /// surfaced by `/healthz` and the metrics endpoint.
    fn name(&self) -> &'static str;

    /// The snapshot file backing this store, if any.
    fn snapshot_path(&self) -> Option<&Path>;

    /// `true` when the snapshot payload is memory-mapped (as opposed to
    /// owned heap memory, including the buffered-read fallback).
    fn is_mapped(&self) -> bool;

    /// The encoded dataset (triples + dictionary).
    fn dataset(&self) -> &Dataset;

    /// The type-aware transformed graph (paper Section 4.1).
    fn type_aware(&self) -> &TransformedGraph;

    /// The direct transformed graph (paper Section 3.2).
    fn direct(&self) -> &TransformedGraph;

    /// The six RDF-3X-style permutation indexes.
    fn permutations(&self) -> &PermutationIndexes;
}

/// The owned in-memory backend: parses/builds everything on the heap.
pub struct HeapBackend {
    data: BackendData,
}

impl HeapBackend {
    /// Builds the backend from an encoded dataset.
    pub fn from_dataset(dataset: Dataset, inference: bool) -> Self {
        HeapBackend {
            data: BackendData::build(dataset, inference),
        }
    }
}

impl StorageBackend for HeapBackend {
    fn name(&self) -> &'static str {
        "heap"
    }

    fn snapshot_path(&self) -> Option<&Path> {
        None
    }

    fn is_mapped(&self) -> bool {
        false
    }

    fn dataset(&self) -> &Dataset {
        &self.data.dataset
    }

    fn type_aware(&self) -> &TransformedGraph {
        &self.data.type_aware
    }

    fn direct(&self) -> &TransformedGraph {
        &self.data.direct
    }

    fn permutations(&self) -> &PermutationIndexes {
        &self.data.permutations
    }
}

/// The zero-copy snapshot backend: all flat arrays are views into a
/// memory-mapped (or, as a fallback, buffer-read) snapshot file. The
/// mapping stays alive for as long as any view references it.
pub struct SnapshotBackend {
    data: BackendData,
    path: PathBuf,
    mapped: bool,
    /// Whether the snapshot was written by a store with inference enabled
    /// (the closure is already materialized in the stored triples).
    inference: bool,
}

impl SnapshotBackend {
    /// Opens `path` and reconstructs every structure in place.
    pub fn open(path: &Path) -> Result<Self, StoreError> {
        let snapshot = Snapshot::open(path)?;
        let mapped = snapshot.is_mapped();
        let mut cur = snapshot.cursor();
        let meta: turbohom_storage::FlatVec<u64> = cur.next_section(TAG_STORE_META)?;
        if meta.len() != 3 {
            return Err(turbohom_storage::SnapshotError::Malformed(
                "store meta section length".into(),
            )
            .into());
        }
        if meta[0] != STORE_FORMAT_SUB_VERSION {
            return Err(turbohom_storage::SnapshotError::VersionMismatch {
                found: meta[0] as u32,
                expected: STORE_FORMAT_SUB_VERSION as u32,
            }
            .into());
        }
        let inference = meta[1] != 0;
        let triple_count = meta[2] as usize;
        let dataset = Dataset::read_sections(&mut cur)?;
        if dataset.len() != triple_count {
            return Err(turbohom_storage::SnapshotError::Malformed(format!(
                "snapshot holds {} triples, meta says {triple_count}",
                dataset.len()
            ))
            .into());
        }
        let type_aware = TransformedGraph::read_sections(&mut cur)?;
        let direct = TransformedGraph::read_sections(&mut cur)?;
        let permutations = PermutationIndexes::read_sections(&mut cur)?;
        Ok(SnapshotBackend {
            data: BackendData {
                dataset,
                type_aware,
                direct,
                permutations,
            },
            path: path.to_path_buf(),
            mapped,
            inference,
        })
    }

    /// The [`StoreOptions`] recorded in (or implied by) the snapshot,
    /// with the runtime-only thread count supplied by the caller.
    pub fn options(&self, threads: usize) -> StoreOptions {
        StoreOptions {
            inference: self.inference,
            threads,
        }
    }
}

impl StorageBackend for SnapshotBackend {
    fn name(&self) -> &'static str {
        "snapshot"
    }

    fn snapshot_path(&self) -> Option<&Path> {
        Some(&self.path)
    }

    fn is_mapped(&self) -> bool {
        self.mapped
    }

    fn dataset(&self) -> &Dataset {
        &self.data.dataset
    }

    fn type_aware(&self) -> &TransformedGraph {
        &self.data.type_aware
    }

    fn direct(&self) -> &TransformedGraph {
        &self.data.direct
    }

    fn permutations(&self) -> &PermutationIndexes {
        &self.data.permutations
    }
}

/// Serializes a backend's full data to a snapshot file; returns the number
/// of bytes written.
pub(crate) fn save_snapshot(
    backend: &dyn StorageBackend,
    inference: bool,
    path: &Path,
) -> Result<u64, StoreError> {
    let mut w = SnapshotWriter::new();
    let meta: [u64; 3] = [
        STORE_FORMAT_SUB_VERSION,
        inference as u64,
        backend.dataset().len() as u64,
    ];
    w.section(TAG_STORE_META, &meta);
    backend.dataset().write_sections(&mut w);
    backend.type_aware().write_sections(&mut w);
    backend.direct().write_sections(&mut w);
    backend.permutations().write_sections(&mut w);
    Ok(w.write_to(path)?)
}
