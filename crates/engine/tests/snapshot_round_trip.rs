//! Snapshot backend equivalence and corruption hardening.
//!
//! The snapshot backend must be indistinguishable from the heap backend for
//! every query on every engine, and opening a mangled snapshot must fail
//! with a typed error — never a panic.

use std::path::PathBuf;
use turbohom_engine::{EngineKind, SnapshotError, Store, StoreError, StoreOptions};

fn ub(l: &str) -> String {
    format!("http://ub.org/{l}")
}

fn sample_store() -> Store {
    let mut ds = turbohom_rdf::Dataset::new();
    ds.insert_iris(
        &ub("GraduateStudent"),
        turbohom_rdf::vocab::RDFS_SUBCLASSOF,
        &ub("Student"),
    );
    for i in 0..4 {
        let s = ub(&format!("student{i}"));
        ds.insert_iris(&s, turbohom_rdf::vocab::RDF_TYPE, &ub("GraduateStudent"));
        ds.insert_iris(&s, &ub("memberOf"), &ub("dept0"));
        ds.insert(
            &turbohom_rdf::Term::iri(&s),
            &turbohom_rdf::Term::iri(ub("age")),
            &turbohom_rdf::Term::typed_literal(
                format!("{}", 20 + i),
                "http://www.w3.org/2001/XMLSchema#integer",
            ),
        );
    }
    ds.insert_iris(
        &ub("dept0"),
        turbohom_rdf::vocab::RDF_TYPE,
        &ub("Department"),
    );
    ds.insert_iris(&ub("dept0"), &ub("subOrganizationOf"), &ub("univ0"));
    ds.insert_iris(
        &ub("univ0"),
        turbohom_rdf::vocab::RDF_TYPE,
        &ub("University"),
    );
    Store::from_dataset_with(
        ds,
        StoreOptions {
            inference: true,
            threads: 1,
        },
    )
}

fn temp_path(name: &str) -> PathBuf {
    let dir = std::env::temp_dir().join("turbohom-engine-tests");
    std::fs::create_dir_all(&dir).unwrap();
    dir.join(name)
}

const QUERIES: &[&str] = &[
    r#"PREFIX rdf: <http://www.w3.org/1999/02/22-rdf-syntax-ns#>
       PREFIX ub: <http://ub.org/>
       SELECT ?x ?d WHERE { ?x rdf:type ub:Student . ?x ub:memberOf ?d . }"#,
    r#"PREFIX rdf: <http://www.w3.org/1999/02/22-rdf-syntax-ns#>
       PREFIX ub: <http://ub.org/>
       SELECT ?x ?y ?z WHERE {
         ?x rdf:type ub:Student . ?y rdf:type ub:University . ?z rdf:type ub:Department .
         ?x ub:memberOf ?z . ?z ub:subOrganizationOf ?y . }"#,
    "SELECT ?p ?o WHERE { <http://ub.org/student0> ?p ?o . }",
    r#"PREFIX ub: <http://ub.org/>
       SELECT ?x ?a WHERE { ?x ub:age ?a . FILTER(?a > 21) }"#,
    r#"PREFIX rdf: <http://www.w3.org/1999/02/22-rdf-syntax-ns#>
       PREFIX ub: <http://ub.org/>
       SELECT ?x ?u WHERE {
         { ?x rdf:type ub:Department . } UNION { ?x rdf:type ub:University . }
         OPTIONAL { ?x ub:subOrganizationOf ?u . }
       }"#,
];

#[test]
fn snapshot_backend_is_byte_identical_to_heap_on_every_engine() {
    let heap = sample_store();
    let path = temp_path("equivalence.snap");
    let bytes = heap.save_snapshot(&path).unwrap();
    assert!(bytes > 64);

    let snap = Store::from_snapshot(&path).unwrap();
    assert_eq!(snap.backend_name(), "snapshot");
    assert_eq!(snap.snapshot_path(), Some(path.as_path()));
    assert_eq!(heap.backend_name(), "heap");
    assert_eq!(heap.snapshot_path(), None);
    assert_eq!(snap.triple_count(), heap.triple_count());
    assert!(snap.options().inference);

    for q in QUERIES {
        for kind in EngineKind::all() {
            let a = heap.execute(q, kind).unwrap();
            let b = snap.execute(q, kind).unwrap();
            assert_eq!(
                a.to_sparql_json(),
                b.to_sparql_json(),
                "engine {kind} disagrees on {q}"
            );
        }
    }
    std::fs::remove_file(&path).ok();
}

#[test]
fn saving_from_a_snapshot_store_round_trips_again() {
    let heap = sample_store();
    let p1 = temp_path("resave1.snap");
    let p2 = temp_path("resave2.snap");
    heap.save_snapshot(&p1).unwrap();
    let snap = Store::from_snapshot(&p1).unwrap();
    // A snapshot-backed store can itself be saved; the files are identical.
    snap.save_snapshot(&p2).unwrap();
    assert_eq!(std::fs::read(&p1).unwrap(), std::fs::read(&p2).unwrap());
    std::fs::remove_file(&p1).ok();
    std::fs::remove_file(&p2).ok();
}

#[test]
fn bad_magic_is_a_typed_error() {
    let path = temp_path("badmagic.snap");
    sample_store().save_snapshot(&path).unwrap();
    let mut bytes = std::fs::read(&path).unwrap();
    bytes[0] = b'X';
    std::fs::write(&path, &bytes).unwrap();
    let err = Store::from_snapshot(&path).unwrap_err();
    assert!(matches!(err, StoreError::Snapshot(SnapshotError::BadMagic)));
    std::fs::remove_file(&path).ok();
}

#[test]
fn version_mismatch_is_a_typed_error() {
    let path = temp_path("badversion.snap");
    sample_store().save_snapshot(&path).unwrap();
    let mut bytes = std::fs::read(&path).unwrap();
    bytes[8] = 0xFE; // version field at offset 8
    std::fs::write(&path, &bytes).unwrap();
    let err = Store::from_snapshot(&path).unwrap_err();
    assert!(matches!(
        err,
        StoreError::Snapshot(SnapshotError::VersionMismatch { .. })
    ));
    std::fs::remove_file(&path).ok();
}

#[test]
fn truncated_snapshot_is_a_typed_error() {
    let path = temp_path("truncated.snap");
    sample_store().save_snapshot(&path).unwrap();
    let bytes = std::fs::read(&path).unwrap();
    for keep in [0usize, 7, 63, 64, bytes.len() / 2, bytes.len() - 1] {
        std::fs::write(&path, &bytes[..keep]).unwrap();
        let err = Store::from_snapshot(&path).unwrap_err();
        assert!(
            matches!(
                err,
                StoreError::Snapshot(SnapshotError::Truncated(_))
                    | StoreError::Snapshot(SnapshotError::Malformed(_))
            ),
            "keep={keep} gave {err:?}"
        );
    }
    std::fs::remove_file(&path).ok();
}

#[test]
fn corrupted_payload_is_a_typed_error() {
    let path = temp_path("corrupt.snap");
    sample_store().save_snapshot(&path).unwrap();
    let original = std::fs::read(&path).unwrap();
    // Flip a byte in the middle of the payload and near its end.
    for pos in [original.len() / 2, original.len() * 3 / 4] {
        let mut bytes = original.clone();
        bytes[pos] ^= 0xFF;
        std::fs::write(&path, &bytes).unwrap();
        let err = Store::from_snapshot(&path).unwrap_err();
        assert!(
            matches!(
                err,
                StoreError::Snapshot(SnapshotError::ChecksumMismatch(_))
                    | StoreError::Snapshot(SnapshotError::Malformed(_))
            ),
            "pos={pos} gave {err:?}"
        );
    }
    std::fs::remove_file(&path).ok();
}

#[test]
fn missing_file_is_an_io_error() {
    let err = Store::from_snapshot(&temp_path("does-not-exist.snap")).unwrap_err();
    assert!(matches!(err, StoreError::Snapshot(SnapshotError::Io(_))));
}
