//! The sharded-snapshot manifest: a small JSON file describing a saved set
//! of per-shard snapshots.
//!
//! Saving a sharded store to `base` writes one ordinary snapshot per shard
//! (`base.shard{i}.snap`, the same container format `docs/STORAGE.md`
//! specifies) plus this manifest at `base` itself. Booting reads the
//! manifest, maps each shard snapshot, and rebuilds the summaries by
//! scanning the shard datasets — summaries are derived data and are never
//! persisted. The greedy partitioner's bucket table *is* persisted: it
//! depends on the full dataset, which no longer exists at boot time.
//!
//! The file is hand-rolled JSON (this workspace builds offline, without
//! serde), with a fixed schema identified by [`MANIFEST_FORMAT`].

use crate::partitioner::{Ownership, PartitionerKind, GREEDY_BUCKETS};

/// Schema identifier of the manifest format.
pub const MANIFEST_FORMAT: &str = "turbohom-shards/1";

/// A parsed (or to-be-written) shard manifest.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Manifest {
    /// Number of shards.
    pub shards: usize,
    /// Halo radius the shards were partitioned with.
    pub halo: usize,
    /// Which partitioner assigned ownership.
    pub partitioner: PartitionerKind,
    /// The greedy bucket table (empty for the hash partitioner).
    pub buckets: Vec<u16>,
    /// Per-shard snapshot file names, relative to the manifest's directory.
    pub shard_files: Vec<String>,
    /// Per-shard triple counts (for `ls`-level sanity checks and load logs).
    pub shard_triples: Vec<u64>,
    /// Distinct triples in the original, unpartitioned dataset.
    pub global_triples: u64,
}

impl Manifest {
    /// Reconstructs the ownership assignment this manifest describes.
    pub fn ownership(&self) -> Result<Ownership, String> {
        match self.partitioner {
            PartitionerKind::Hash => Ok(Ownership::hash(self.shards)),
            PartitionerKind::Greedy => Ownership::greedy(self.shards, self.buckets.clone())
                .ok_or_else(|| {
                    format!(
                        "greedy bucket table must have {GREEDY_BUCKETS} entries in 0..{}",
                        self.shards
                    )
                }),
        }
    }

    /// Serializes the manifest as JSON.
    pub fn to_json(&self) -> String {
        let mut out = String::with_capacity(256);
        out.push_str("{\"format\":\"");
        out.push_str(MANIFEST_FORMAT);
        out.push_str("\",\"shards\":");
        out.push_str(&self.shards.to_string());
        out.push_str(",\"halo\":");
        out.push_str(&self.halo.to_string());
        out.push_str(",\"partitioner\":\"");
        out.push_str(self.partitioner.name());
        out.push_str("\",\"buckets\":[");
        for (i, b) in self.buckets.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            out.push_str(&b.to_string());
        }
        out.push_str("],\"shard_files\":[");
        for (i, f) in self.shard_files.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            out.push('"');
            // Shard file names are generated (`<base>.shard<i>.snap`), but
            // escape the JSON-significant characters anyway.
            for c in f.chars() {
                match c {
                    '"' => out.push_str("\\\""),
                    '\\' => out.push_str("\\\\"),
                    c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
                    c => out.push(c),
                }
            }
            out.push('"');
        }
        out.push_str("],\"shard_triples\":[");
        for (i, t) in self.shard_triples.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            out.push_str(&t.to_string());
        }
        out.push_str("],\"global_triples\":");
        out.push_str(&self.global_triples.to_string());
        out.push('}');
        out
    }

    /// Parses a manifest, validating the schema identifier and the
    /// cross-field invariants (list lengths, bucket-table shape).
    pub fn parse(text: &str) -> Result<Manifest, String> {
        let mut p = Parser {
            bytes: text.as_bytes(),
            pos: 0,
        };
        let mut format = None;
        let mut shards = None;
        let mut halo = None;
        let mut partitioner = None;
        let mut buckets = Vec::new();
        let mut shard_files = Vec::new();
        let mut shard_triples = Vec::new();
        let mut global_triples = None;

        p.expect(b'{')?;
        loop {
            let key = p.string()?;
            p.expect(b':')?;
            match key.as_str() {
                "format" => format = Some(p.string()?),
                "shards" => shards = Some(p.number()? as usize),
                "halo" => halo = Some(p.number()? as usize),
                "partitioner" => {
                    let name = p.string()?;
                    partitioner = Some(name.parse::<PartitionerKind>().map_err(|e| e.to_string())?);
                }
                "buckets" => {
                    buckets = p
                        .number_array()?
                        .into_iter()
                        .map(|n| u16::try_from(n).map_err(|_| "bucket id out of range".to_string()))
                        .collect::<Result<_, _>>()?;
                }
                "shard_files" => shard_files = p.string_array()?,
                "shard_triples" => shard_triples = p.number_array()?,
                "global_triples" => global_triples = Some(p.number()?),
                other => return Err(format!("unknown manifest key `{other}`")),
            }
            if !p.comma_or(b'}')? {
                break;
            }
        }
        p.end()?;

        if format.as_deref() != Some(MANIFEST_FORMAT) {
            return Err(format!(
                "unsupported manifest format {:?} (expected {MANIFEST_FORMAT:?})",
                format.unwrap_or_default()
            ));
        }
        let shards = shards.ok_or("manifest is missing `shards`")?;
        let manifest = Manifest {
            shards,
            halo: halo.ok_or("manifest is missing `halo`")?,
            partitioner: partitioner.ok_or("manifest is missing `partitioner`")?,
            buckets,
            shard_files,
            shard_triples,
            global_triples: global_triples.ok_or("manifest is missing `global_triples`")?,
        };
        if shards == 0 || manifest.shard_files.len() != shards {
            return Err(format!(
                "manifest lists {} shard files for {shards} shards",
                manifest.shard_files.len()
            ));
        }
        if manifest.shard_triples.len() != shards {
            return Err("manifest `shard_triples` length mismatch".into());
        }
        manifest.ownership()?;
        Ok(manifest)
    }
}

/// A minimal JSON scanner for the fixed manifest shape: objects with
/// string/number/array-of-(string|number) values only.
struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl Parser<'_> {
    fn skip_ws(&mut self) {
        while self
            .bytes
            .get(self.pos)
            .is_some_and(|b| b.is_ascii_whitespace())
        {
            self.pos += 1;
        }
    }

    fn expect(&mut self, b: u8) -> Result<(), String> {
        self.skip_ws();
        if self.bytes.get(self.pos) == Some(&b) {
            self.pos += 1;
            Ok(())
        } else {
            Err(format!("expected `{}` at offset {}", b as char, self.pos))
        }
    }

    /// Consumes `,` and returns `true`, or consumes `close` and returns
    /// `false`.
    fn comma_or(&mut self, close: u8) -> Result<bool, String> {
        self.skip_ws();
        match self.bytes.get(self.pos) {
            Some(b',') => {
                self.pos += 1;
                Ok(true)
            }
            Some(&b) if b == close => {
                self.pos += 1;
                Ok(false)
            }
            _ => Err(format!(
                "expected `,` or `{}` at offset {}",
                close as char, self.pos
            )),
        }
    }

    fn string(&mut self) -> Result<String, String> {
        self.expect(b'"')?;
        let mut out = String::new();
        loop {
            match self.bytes.get(self.pos) {
                None => return Err("unterminated string".into()),
                Some(b'"') => {
                    self.pos += 1;
                    return Ok(out);
                }
                Some(b'\\') => {
                    self.pos += 1;
                    match self.bytes.get(self.pos) {
                        Some(b'"') => out.push('"'),
                        Some(b'\\') => out.push('\\'),
                        Some(b'/') => out.push('/'),
                        Some(b'n') => out.push('\n'),
                        Some(b't') => out.push('\t'),
                        Some(b'r') => out.push('\r'),
                        Some(b'u') => {
                            let hex = self
                                .bytes
                                .get(self.pos + 1..self.pos + 5)
                                .ok_or("truncated \\u escape")?;
                            let code = u32::from_str_radix(
                                std::str::from_utf8(hex).map_err(|_| "bad \\u escape")?,
                                16,
                            )
                            .map_err(|_| "bad \\u escape")?;
                            out.push(char::from_u32(code).ok_or("bad \\u code point")?);
                            self.pos += 4;
                        }
                        _ => return Err("unsupported escape".into()),
                    }
                    self.pos += 1;
                }
                Some(&b) => {
                    // Manifest strings are file names; multi-byte UTF-8 is
                    // copied through byte by byte (input was a &str, so the
                    // sequence is valid).
                    let start = self.pos;
                    let mut end = self.pos + 1;
                    if b >= 0x80 {
                        while self.bytes.get(end).is_some_and(|&c| c & 0xc0 == 0x80) {
                            end += 1;
                        }
                    }
                    out.push_str(
                        std::str::from_utf8(&self.bytes[start..end])
                            .map_err(|_| "invalid UTF-8 in string")?,
                    );
                    self.pos = end;
                }
            }
        }
    }

    fn number(&mut self) -> Result<u64, String> {
        self.skip_ws();
        let start = self.pos;
        while self.bytes.get(self.pos).is_some_and(|b| b.is_ascii_digit()) {
            self.pos += 1;
        }
        if start == self.pos {
            return Err(format!("expected a number at offset {start}"));
        }
        std::str::from_utf8(&self.bytes[start..self.pos])
            .unwrap()
            .parse()
            .map_err(|_| "number out of range".into())
    }

    fn number_array(&mut self) -> Result<Vec<u64>, String> {
        self.expect(b'[')?;
        self.skip_ws();
        let mut out = Vec::new();
        if self.bytes.get(self.pos) == Some(&b']') {
            self.pos += 1;
            return Ok(out);
        }
        loop {
            out.push(self.number()?);
            if !self.comma_or(b']')? {
                return Ok(out);
            }
        }
    }

    fn string_array(&mut self) -> Result<Vec<String>, String> {
        self.expect(b'[')?;
        self.skip_ws();
        let mut out = Vec::new();
        if self.bytes.get(self.pos) == Some(&b']') {
            self.pos += 1;
            return Ok(out);
        }
        loop {
            out.push(self.string()?);
            if !self.comma_or(b']')? {
                return Ok(out);
            }
        }
    }

    fn end(&mut self) -> Result<(), String> {
        self.skip_ws();
        if self.pos == self.bytes.len() {
            Ok(())
        } else {
            Err(format!("trailing content at offset {}", self.pos))
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample(partitioner: PartitionerKind) -> Manifest {
        Manifest {
            shards: 4,
            halo: 2,
            partitioner,
            buckets: match partitioner {
                PartitionerKind::Hash => Vec::new(),
                PartitionerKind::Greedy => (0..GREEDY_BUCKETS).map(|b| (b % 4) as u16).collect(),
            },
            shard_files: (0..4).map(|i| format!("lubm.shard{i}.snap")).collect(),
            shard_triples: vec![100, 120, 90, 110],
            global_triples: 300,
        }
    }

    #[test]
    fn round_trips_for_both_partitioners() {
        for kind in [PartitionerKind::Hash, PartitionerKind::Greedy] {
            let m = sample(kind);
            let parsed = Manifest::parse(&m.to_json()).unwrap();
            assert_eq!(parsed, m);
            parsed.ownership().unwrap();
        }
    }

    #[test]
    fn rejects_malformed_manifests() {
        assert!(Manifest::parse("").is_err());
        assert!(Manifest::parse("{}").is_err());
        assert!(Manifest::parse("not json").is_err());
        // Wrong format tag.
        let wrong = sample(PartitionerKind::Hash)
            .to_json()
            .replace("turbohom-shards/1", "turbohom-shards/99");
        assert!(Manifest::parse(&wrong).unwrap_err().contains("format"));
        // File-count mismatch.
        let mut m = sample(PartitionerKind::Hash);
        m.shard_files.pop();
        assert!(Manifest::parse(&m.to_json()).is_err());
        // Greedy without a bucket table.
        let mut m = sample(PartitionerKind::Greedy);
        m.buckets.clear();
        assert!(Manifest::parse(&m.to_json()).is_err());
        // Trailing garbage.
        let mut s = sample(PartitionerKind::Hash).to_json();
        s.push('x');
        assert!(Manifest::parse(&s).is_err());
    }

    #[test]
    fn file_names_with_escapes_round_trip() {
        let mut m = sample(PartitionerKind::Hash);
        m.shard_files[0] = "we\"ird\\name.snap".into();
        m.shard_files[1] = "unicode-Ω.snap".into();
        let parsed = Manifest::parse(&m.to_json()).unwrap();
        assert_eq!(parsed.shard_files, m.shard_files);
    }
}
