//! Query shardability analysis and anchor selection.
//!
//! Scatter-gather over halo-replicated shards is *exact* when every global
//! match can be assigned to exactly one shard that holds all of its triples.
//! The assignment is by the match's **anchor** binding: the match belongs to
//! `owner(binding(anchor))`. That shard holds the whole match as long as
//! every triple of the pattern lies within the halo radius of the anchor —
//! which is precisely what [`analyze_query`] verifies, using the *pattern*
//! linkage graph as a conservative stand-in for the data linkage graph:
//!
//! * edges exist only between the subject and object of triples whose
//!   predicate is a constant, non-type, non-schema IRI (the triples that
//!   contribute linkage edges in the data);
//! * a plain triple is satisfiable on the anchor's shard if
//!   `min(d(subject), d(object)) ≤ halo` (the shard replicates any triple
//!   with one endpoint in the halo);
//! * an `rdf:type` or variable-predicate triple needs `d(subject) ≤ halo`
//!   (the shard holds *all* triples of every halo subject);
//! * schema-predicate triples are replicated everywhere and always pass.
//!
//! `OPTIONAL` groups are checked too (an optional extension within the halo
//! is guaranteed present, so the shard finds exactly the extensions the
//! single store would), with each group seeing only the linkage edges of
//! its ancestors plus its own — two sibling optionals cannot vouch for each
//! other's distances.
//!
//! Queries with `UNION`, no usable anchor, or triples beyond the halo are
//! rejected with a human-readable reason; the caller falls back to
//! single-store semantics or reports the error.

use std::collections::{HashMap, VecDeque};
use turbohom_rdf::{vocab, Term};
use turbohom_sparql::{GroupPattern, Query, SparqlTerm, TriplePattern};

/// The term whose binding assigns each match to exactly one shard.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Anchor {
    /// A constant anchor: the query routes to `owner(term)` alone.
    Constant(Term),
    /// A variable anchor: every live shard executes, keeping only rows whose
    /// anchor binding it owns.
    Variable(String),
}

/// The outcome of a successful shardability analysis.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ShardQuery {
    /// The selected anchor.
    pub anchor: Anchor,
}

/// One node of the pattern linkage graph: a variable or a constant term in
/// subject/object position.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
enum Node<'a> {
    Var(&'a str),
    Const(&'a Term),
}

fn node<'a>(term: &'a SparqlTerm) -> Node<'a> {
    match term {
        SparqlTerm::Variable(v) => Node::Var(v),
        SparqlTerm::Constant(c) => Node::Const(c),
    }
}

/// How a triple constrains shard placement.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum TripleClass {
    /// Replicated everywhere; never constrains.
    Schema,
    /// `rdf:type`: present wherever the subject is in the halo.
    Type,
    /// Variable predicate: could match a type triple, so only the subject's
    /// halo membership guarantees presence.
    VarPred,
    /// Constant non-type, non-schema predicate: present wherever either
    /// endpoint is in the halo, and contributes a linkage edge.
    Plain,
}

fn classify(t: &TriplePattern) -> TripleClass {
    match &t.predicate {
        SparqlTerm::Variable(_) => TripleClass::VarPred,
        SparqlTerm::Constant(c) => match c.as_iri() {
            Some(iri) if iri == vocab::RDF_TYPE => TripleClass::Type,
            Some(iri) if crate::is_schema_predicate(iri) => TripleClass::Schema,
            _ => TripleClass::Plain,
        },
    }
}

/// Decides whether `query` can execute exactly over shards built with halo
/// radius `halo`, and which anchor to use. Constant anchors are preferred
/// (they route to a single shard); among variables, projected ones are
/// preferred (no projection surgery needed on the per-shard queries).
pub fn analyze_query(query: &Query, halo: usize) -> Result<ShardQuery, String> {
    let pattern = &query.pattern;
    if !pattern.unions.is_empty() || has_nested_union(pattern) {
        return Err("UNION alternatives are out of scope for sharded execution".into());
    }

    // Candidate anchors, in appearance order over the *required* triples:
    // subjects always qualify; objects only for plain triples (a type
    // object is a class, a schema object never binds per match).
    let mut constants: Vec<&Term> = Vec::new();
    let mut variables: Vec<&str> = Vec::new();
    for t in &pattern.triples {
        let mut push = |n| match n {
            Node::Const(c) => {
                if !constants.contains(&c) {
                    constants.push(c);
                }
            }
            Node::Var(v) => {
                if !variables.contains(&v) {
                    variables.push(v);
                }
            }
        };
        match classify(t) {
            TripleClass::Schema => {}
            TripleClass::Type | TripleClass::VarPred => push(node(&t.subject)),
            TripleClass::Plain => {
                push(node(&t.subject));
                push(node(&t.object));
            }
        }
    }
    if constants.is_empty() && variables.is_empty() {
        return Err("no usable anchor: the required pattern has only schema triples".into());
    }

    // Prefer projected variables (stable order: projection order first).
    let projected = query.projected_variables();
    let mut ordered_vars: Vec<&str> = projected
        .iter()
        .map(String::as_str)
        .filter(|v| variables.contains(v))
        .collect();
    for v in &variables {
        if !ordered_vars.contains(v) {
            ordered_vars.push(v);
        }
    }

    for c in &constants {
        if check_anchor(pattern, Node::Const(c), halo) {
            return Ok(ShardQuery {
                anchor: Anchor::Constant((*c).clone()),
            });
        }
    }
    for v in &ordered_vars {
        if check_anchor(pattern, Node::Var(v), halo) {
            return Ok(ShardQuery {
                anchor: Anchor::Variable((*v).to_string()),
            });
        }
    }
    Err(format!(
        "no anchor covers every triple within halo radius {halo} \
         (the pattern is disconnected or wider than the halo)"
    ))
}

fn has_nested_union(group: &GroupPattern) -> bool {
    group
        .optionals
        .iter()
        .any(|g| !g.unions.is_empty() || has_nested_union(g))
}

/// Checks every obligation of the pattern (required part and, recursively,
/// each optional group) against BFS distances from `anchor`.
fn check_anchor(pattern: &GroupPattern, anchor: Node<'_>, halo: usize) -> bool {
    check_group(pattern, &Vec::new(), anchor, halo)
}

type Edges<'a> = Vec<(Node<'a>, Node<'a>)>;

fn check_group<'a>(
    group: &'a GroupPattern,
    inherited: &Edges<'a>,
    anchor: Node<'a>,
    halo: usize,
) -> bool {
    // This group's linkage edges: inherited (required + ancestor optionals)
    // plus its own plain triples. Sibling optional groups are *not*
    // inherited — they may be unmatched while this group matches.
    let mut edges = inherited.clone();
    for t in &group.triples {
        if classify(t) == TripleClass::Plain {
            edges.push((node(&t.subject), node(&t.object)));
        }
    }
    let dist = bfs(anchor, &edges);
    let within = |n: Node<'a>| dist.get(&n).is_some_and(|&d| d <= halo);
    for t in &group.triples {
        let ok = match classify(t) {
            TripleClass::Schema => true,
            TripleClass::Type | TripleClass::VarPred => within(node(&t.subject)),
            TripleClass::Plain => within(node(&t.subject)) || within(node(&t.object)),
        };
        if !ok {
            return false;
        }
    }
    group
        .optionals
        .iter()
        .all(|opt| check_group(opt, &edges, anchor, halo))
}

fn bfs<'a>(start: Node<'a>, edges: &Edges<'a>) -> HashMap<Node<'a>, usize> {
    let mut adjacency: HashMap<Node<'a>, Vec<Node<'a>>> = HashMap::new();
    for &(a, b) in edges {
        adjacency.entry(a).or_default().push(b);
        adjacency.entry(b).or_default().push(a);
    }
    let mut dist = HashMap::new();
    dist.insert(start, 0usize);
    let mut queue = VecDeque::from([start]);
    while let Some(n) = queue.pop_front() {
        let d = dist[&n];
        if let Some(next) = adjacency.get(&n) {
            for &m in next {
                if let std::collections::hash_map::Entry::Vacant(e) = dist.entry(m) {
                    e.insert(d + 1);
                    queue.push_back(m);
                }
            }
        }
    }
    dist
}

#[cfg(test)]
mod tests {
    use super::*;
    use turbohom_sparql::parse_query;

    const TYPE: &str = "http://www.w3.org/1999/02/22-rdf-syntax-ns#type";

    #[test]
    fn constant_anchor_is_preferred() {
        let q = parse_query(
            "SELECT ?x WHERE { ?x <http://ex/memberOf> <http://ex/d1> . \
                               ?x <http://ex/advisor> ?y . }",
        )
        .unwrap();
        let sq = analyze_query(&q, 2).unwrap();
        assert_eq!(sq.anchor, Anchor::Constant(Term::iri("http://ex/d1")));
    }

    #[test]
    fn variable_anchor_prefers_projected_variables() {
        let q =
            parse_query("SELECT ?y WHERE { ?x <http://ex/p> ?y . ?y <http://ex/q> ?z . }").unwrap();
        let sq = analyze_query(&q, 2).unwrap();
        assert_eq!(sq.anchor, Anchor::Variable("y".into()));
    }

    #[test]
    fn type_only_queries_anchor_on_the_subject() {
        let q = parse_query(&format!(
            "SELECT ?x WHERE {{ ?x <{TYPE}> <http://ex/Student> . }}"
        ))
        .unwrap();
        let sq = analyze_query(&q, 2).unwrap();
        assert_eq!(sq.anchor, Anchor::Variable("x".into()));
    }

    #[test]
    fn union_is_rejected() {
        let q = parse_query(
            "SELECT ?x WHERE { { ?x <http://ex/a> ?y . } UNION { ?x <http://ex/b> ?y . } }",
        )
        .unwrap();
        let err = analyze_query(&q, 2).unwrap_err();
        assert!(err.contains("UNION"));
    }

    #[test]
    fn disconnected_patterns_are_rejected() {
        let q = parse_query("SELECT ?a ?b WHERE { ?a <http://ex/p> ?x . ?b <http://ex/q> ?y . }")
            .unwrap();
        assert!(analyze_query(&q, 2).is_err());
    }

    #[test]
    fn chains_wider_than_the_halo_are_rejected() {
        // A 7-node path. Under the min-distance rule an edge is satisfied
        // when *either* endpoint is within the halo, so the middle anchor d
        // covers the whole path at halo 2 (the far edges f–g and a–b each
        // have an endpoint 2 hops away); at halo 1 no anchor covers both
        // ends.
        let q = parse_query(
            "SELECT ?a WHERE { ?a <http://ex/p> ?b . ?b <http://ex/p> ?c . \
                               ?c <http://ex/p> ?d . ?d <http://ex/p> ?e . \
                               ?e <http://ex/p> ?f . ?f <http://ex/p> ?g . }",
        )
        .unwrap();
        let sq = analyze_query(&q, 2).unwrap();
        assert_eq!(sq.anchor, Anchor::Variable("d".into()));
        assert!(analyze_query(&q, 1).is_err());
    }

    #[test]
    fn type_triples_do_not_provide_linkage() {
        // x and y are connected only through a shared class — but type
        // edges carry no linkage, so the pattern is effectively
        // disconnected for sharding purposes.
        let q = parse_query(&format!(
            "SELECT ?x ?y WHERE {{ ?x <{TYPE}> <http://ex/C> . ?y <{TYPE}> <http://ex/C> . }}"
        ))
        .unwrap();
        assert!(analyze_query(&q, 4).is_err());
    }

    #[test]
    fn optionals_count_toward_the_distance_check() {
        let q = parse_query(
            "SELECT ?x WHERE { ?x <http://ex/p> ?y . \
               OPTIONAL { ?y <http://ex/q> ?z . ?z <http://ex/q> ?w . } }",
        )
        .unwrap();
        // From x at halo 2 the deepest optional edge z–w still has z at
        // distance 2, so the projected anchor x works; at halo 1 the check
        // shifts to y (z–w has z at distance 1); at halo 0 nothing covers
        // the required triple and the optional together.
        assert_eq!(
            analyze_query(&q, 2).unwrap().anchor,
            Anchor::Variable("x".into())
        );
        assert_eq!(
            analyze_query(&q, 1).unwrap().anchor,
            Anchor::Variable("y".into())
        );
        assert!(analyze_query(&q, 0).is_err());
    }

    #[test]
    fn sibling_optionals_do_not_vouch_for_each_other() {
        // Each optional is individually within halo 1 of x through its own
        // edge, but o2's triple must not use o1's edge for distance.
        let q = parse_query(
            "SELECT ?x WHERE { ?x <http://ex/p> ?a . \
               OPTIONAL { ?a <http://ex/q> ?b . } \
               OPTIONAL { ?b <http://ex/r> ?c . } }",
        )
        .unwrap();
        // Anchoring on a: b is 1 away (first optional's own edge), but the
        // second optional sees only required+own edges, where b is
        // unreachable → rejected at halo 1.
        assert!(analyze_query(&q, 1).is_err());
        // With halo 2 anchored on a … still rejected: the second optional
        // never inherits the sibling edge a–b, so b stays unreachable.
        assert!(analyze_query(&q, 2).is_err());
    }

    #[test]
    fn variable_predicates_need_the_subject_nearby() {
        let q = parse_query("SELECT ?s ?p ?o WHERE { ?s ?p ?o . }").unwrap();
        let sq = analyze_query(&q, 2).unwrap();
        // Only the subject qualifies as an anchor; o is not reachable via
        // linkage but the obligation is on the subject alone.
        assert_eq!(sq.anchor, Anchor::Variable("s".into()));
    }
}
