//! Deterministic partitioning of a dataset into `k` shard datasets.
//!
//! Ownership is a pure function of a term's N-Triples rendering (see
//! [`term_hash`]), so every process agrees on the owner of every term
//! without coordination. Each shard dataset then contains:
//!
//! * every *schema* triple (`rdfs:subClassOf` / `subPropertyOf` / `domain` /
//!   `range`) — replicated everywhere, so schema patterns match anywhere;
//! * every `rdf:type` triple whose subject lies within the shard's halo;
//! * every other triple with at least one endpoint within the halo.
//!
//! The *halo* of shard `S` is the set of terms within linkage distance
//! `halo` of the terms `S` owns, where the linkage graph connects the
//! subject and object of every non-type, non-schema triple. Replicating the
//! halo is the boundary-adjacency rule that lets a connected query of
//! radius ≤ `halo` around its anchor execute entirely inside the anchor
//! owner's shard — scatter-gather never needs a distributed join.

use crate::term_hash;
use std::collections::VecDeque;
use std::fmt;
use std::str::FromStr;
use turbohom_rdf::{Dataset, Term};

/// Default halo radius: every term within two linkage hops of an owned term
/// is replicated. Radius 2 covers star and short-path queries (all LUBM
/// benchmark shapes) while keeping replication bounded.
pub const DEFAULT_HALO: usize = 2;

/// Number of hash buckets the greedy partitioner distributes over shards.
pub const GREEDY_BUCKETS: usize = 256;

/// How terms are assigned to shards.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum PartitionerKind {
    /// `owner = hash(term) % k` — stateless, nothing to persist.
    Hash,
    /// METIS-lite greedy balancing: terms fall into [`GREEDY_BUCKETS`] hash
    /// buckets, and buckets are assigned to shards in descending
    /// entity-count order, each to the currently least-loaded shard. The
    /// bucket table depends on the dataset and is persisted in the
    /// [`Manifest`](crate::Manifest).
    Greedy,
}

impl PartitionerKind {
    /// The lowercase name used by CLI flags, manifests and metrics labels.
    pub fn name(self) -> &'static str {
        match self {
            PartitionerKind::Hash => "hash",
            PartitionerKind::Greedy => "greedy",
        }
    }
}

impl fmt::Display for PartitionerKind {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.name())
    }
}

/// Error for an unknown partitioner name.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ParsePartitionerError(pub String);

impl fmt::Display for ParsePartitionerError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "unknown partitioner `{}` (expected hash | greedy)",
            self.0
        )
    }
}

impl std::error::Error for ParsePartitionerError {}

impl FromStr for PartitionerKind {
    type Err = ParsePartitionerError;

    fn from_str(s: &str) -> Result<Self, Self::Err> {
        match s.to_ascii_lowercase().as_str() {
            "hash" => Ok(PartitionerKind::Hash),
            "greedy" => Ok(PartitionerKind::Greedy),
            _ => Err(ParsePartitionerError(s.to_string())),
        }
    }
}

/// The term → shard assignment. Cheap to clone and to rebuild from a
/// manifest (the hash variant is stateless; the greedy variant is the
/// persisted bucket table).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Ownership {
    shards: usize,
    kind: PartitionerKind,
    /// `GREEDY_BUCKETS` entries mapping bucket → shard; empty for `Hash`.
    buckets: Vec<u16>,
}

impl Ownership {
    /// Stateless hash ownership over `shards` shards.
    pub fn hash(shards: usize) -> Ownership {
        Ownership {
            shards: shards.max(1),
            kind: PartitionerKind::Hash,
            buckets: Vec::new(),
        }
    }

    /// Greedy ownership from a persisted bucket table.
    ///
    /// Returns `None` if the table does not have [`GREEDY_BUCKETS`] entries
    /// or maps a bucket outside `0..shards`.
    pub fn greedy(shards: usize, buckets: Vec<u16>) -> Option<Ownership> {
        let shards = shards.max(1);
        if buckets.len() != GREEDY_BUCKETS || buckets.iter().any(|&b| (b as usize) >= shards) {
            return None;
        }
        Some(Ownership {
            shards,
            kind: PartitionerKind::Greedy,
            buckets,
        })
    }

    /// Number of shards.
    pub fn shards(&self) -> usize {
        self.shards
    }

    /// Which partitioner produced this assignment.
    pub fn kind(&self) -> PartitionerKind {
        self.kind
    }

    /// The greedy bucket table (empty for the hash partitioner). This is
    /// what the manifest persists.
    pub fn bucket_table(&self) -> &[u16] {
        &self.buckets
    }

    /// The shard owning a term with ownership hash `h`.
    pub fn owner_of_hash(&self, h: u64) -> usize {
        match self.kind {
            PartitionerKind::Hash => (h % self.shards as u64) as usize,
            PartitionerKind::Greedy => self.buckets[(h % GREEDY_BUCKETS as u64) as usize] as usize,
        }
    }

    /// The shard owning `term`, rendering into `scratch` (no allocation on
    /// the warm path).
    pub fn owner(&self, term: &Term, scratch: &mut String) -> usize {
        self.owner_of_hash(crate::term_hash_into(term, scratch))
    }
}

/// Configuration for [`partition_dataset`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct PartitionConfig {
    /// Number of partitions (clamped to at least 1).
    pub shards: usize,
    /// Term → shard assignment strategy.
    pub partitioner: PartitionerKind,
    /// Boundary replication radius (linkage hops).
    pub halo: usize,
}

impl Default for PartitionConfig {
    fn default() -> Self {
        PartitionConfig {
            shards: 4,
            partitioner: PartitionerKind::Hash,
            halo: DEFAULT_HALO,
        }
    }
}

/// The result of partitioning: one dataset per shard plus the ownership
/// assignment needed to route queries and filter scatter-gather results.
#[derive(Debug)]
pub struct PartitionedDataset {
    /// One self-contained dataset per shard (own dictionary, own triples).
    pub shards: Vec<Dataset>,
    /// The term → shard assignment used.
    pub ownership: Ownership,
    /// The halo radius the shards were built with.
    pub halo: usize,
    /// Distinct triples in the source dataset (shard triple counts sum to
    /// more than this because of halo and schema replication).
    pub global_triples: usize,
}

/// Deterministically partitions `dataset` into `config.shards` shard
/// datasets. The dataset must already contain whatever inferred triples the
/// store should serve — inference runs once globally *before* partitioning,
/// never per shard (per-shard RDFS closure would be incomplete at the
/// boundary).
pub fn partition_dataset(dataset: &Dataset, config: &PartitionConfig) -> PartitionedDataset {
    let k = config.shards.max(1);
    let n = dataset.dictionary.len();

    // Decode every term once; everything below works over dense ids.
    let mut terms: Vec<Option<Term>> = vec![None; n];
    for (id, term) in dataset.dictionary.iter() {
        terms[id.index()] = Some(term);
    }
    let terms: Vec<Term> = terms
        .into_iter()
        .map(|t| t.expect("dictionary ids are dense"))
        .collect();
    let hashes: Vec<u64> = terms.iter().map(term_hash).collect();
    let is_schema: Vec<bool> = terms
        .iter()
        .map(|t| t.as_iri().is_some_and(crate::is_schema_predicate))
        .collect();
    let type_id = dataset.rdf_type_id();

    // The linkage graph: subject ↔ object of every non-type, non-schema
    // triple. Type and schema edges are excluded — classes are hubs that
    // would collapse the halo into "everything".
    let mut adjacency: Vec<Vec<u32>> = vec![Vec::new(); n];
    let mut in_data = vec![false; n];
    for t in dataset.triples.iter() {
        let (s, o) = (t.s.index(), t.o.index());
        in_data[s] = true;
        in_data[o] = true;
        if Some(t.p) != type_id && !is_schema[t.p.index()] && s != o {
            adjacency[s].push(o as u32);
            adjacency[o].push(s as u32);
        }
    }

    let ownership = match config.partitioner {
        PartitionerKind::Hash => Ownership::hash(k),
        PartitionerKind::Greedy => greedy_ownership(k, &hashes, &in_data),
    };

    // Per shard: owned seeds → multi-source BFS to `halo` hops → halo set.
    let mut shards: Vec<Dataset> = (0..k).map(|_| Dataset::new()).collect();
    let mut in_halo = vec![false; n];
    let mut queue: VecDeque<(u32, usize)> = VecDeque::new();
    for (shard_id, shard) in shards.iter_mut().enumerate() {
        in_halo.iter_mut().for_each(|b| *b = false);
        queue.clear();
        for id in 0..n {
            if in_data[id] && ownership.owner_of_hash(hashes[id]) == shard_id {
                in_halo[id] = true;
                queue.push_back((id as u32, 0));
            }
        }
        while let Some((id, depth)) = queue.pop_front() {
            if depth == config.halo {
                continue;
            }
            for &next in &adjacency[id as usize] {
                if !in_halo[next as usize] {
                    in_halo[next as usize] = true;
                    queue.push_back((next, depth + 1));
                }
            }
        }
        for t in dataset.triples.iter() {
            let keep = if is_schema[t.p.index()] {
                true
            } else if Some(t.p) == type_id {
                in_halo[t.s.index()]
            } else {
                in_halo[t.s.index()] || in_halo[t.o.index()]
            };
            if keep {
                shard.insert(
                    &terms[t.s.index()],
                    &terms[t.p.index()],
                    &terms[t.o.index()],
                );
            }
        }
    }

    PartitionedDataset {
        shards,
        ownership,
        halo: config.halo,
        global_triples: dataset.len(),
    }
}

/// Builds the greedy bucket table: buckets sorted by descending entity
/// count, each assigned to the currently least-loaded shard (ties broken by
/// the lower id on both sides, so the table is fully deterministic).
fn greedy_ownership(k: usize, hashes: &[u64], in_data: &[bool]) -> Ownership {
    let mut bucket_count = [0u64; GREEDY_BUCKETS];
    for (id, &h) in hashes.iter().enumerate() {
        if in_data[id] {
            bucket_count[(h % GREEDY_BUCKETS as u64) as usize] += 1;
        }
    }
    let mut order: Vec<usize> = (0..GREEDY_BUCKETS).collect();
    order.sort_by_key(|&b| (std::cmp::Reverse(bucket_count[b]), b));
    let mut load = vec![0u64; k];
    let mut table = vec![0u16; GREEDY_BUCKETS];
    for b in order {
        let target = (0..k).min_by_key(|&s| (load[s], s)).unwrap_or(0);
        table[b] = target as u16;
        load[target] += bucket_count[b];
    }
    Ownership::greedy(k, table).expect("greedy table is well-formed by construction")
}

#[cfg(test)]
mod tests {
    use super::*;
    use turbohom_rdf::vocab;

    fn chain_dataset() -> Dataset {
        // a chain a0 → a1 → … → a9 plus types and a schema triple.
        let mut ds = Dataset::new();
        ds.insert_iris("http://ex/C", vocab::RDFS_SUBCLASSOF, "http://ex/D");
        for i in 0..10 {
            ds.insert_iris(&format!("http://ex/a{i}"), vocab::RDF_TYPE, "http://ex/C");
            if i > 0 {
                ds.insert_iris(
                    &format!("http://ex/a{}", i - 1),
                    "http://ex/next",
                    &format!("http://ex/a{i}"),
                );
            }
        }
        ds
    }

    #[test]
    fn partitioner_kind_parses_case_insensitively() {
        assert_eq!("hash".parse::<PartitionerKind>(), Ok(PartitionerKind::Hash));
        assert_eq!(
            "GREEDY".parse::<PartitionerKind>(),
            Ok(PartitionerKind::Greedy)
        );
        assert!("metis".parse::<PartitionerKind>().is_err());
        assert_eq!(PartitionerKind::Hash.to_string(), "hash");
    }

    #[test]
    fn single_shard_partition_is_the_whole_dataset() {
        let ds = chain_dataset();
        for kind in [PartitionerKind::Hash, PartitionerKind::Greedy] {
            let parts = partition_dataset(
                &ds,
                &PartitionConfig {
                    shards: 1,
                    partitioner: kind,
                    halo: 2,
                },
            );
            assert_eq!(parts.shards.len(), 1);
            assert_eq!(parts.shards[0].len(), ds.len(), "{kind}");
            assert_eq!(parts.global_triples, ds.len());
        }
    }

    #[test]
    fn every_triple_lands_on_its_subject_owner_shard() {
        let ds = chain_dataset();
        let parts = partition_dataset(
            &ds,
            &PartitionConfig {
                shards: 4,
                partitioner: PartitionerKind::Hash,
                halo: 2,
            },
        );
        assert_eq!(parts.shards.len(), 4);
        let mut scratch = String::new();
        for t in ds.triples.iter() {
            let (s, p, o) = ds.decode(t);
            let owner = parts.ownership.owner(&s, &mut scratch);
            let shard = &parts.shards[owner];
            let (sid, pid, oid) = (
                shard.dictionary.id_of(&s),
                shard.dictionary.id_of(&p),
                shard.dictionary.id_of(&o),
            );
            let present = match (sid, pid, oid) {
                (Some(s), Some(p), Some(o)) => {
                    shard.triples.contains(&turbohom_rdf::Triple::new(s, p, o))
                }
                _ => false,
            };
            assert!(
                present,
                "triple {s} {p} {o} missing from owner shard {owner}"
            );
        }
    }

    #[test]
    fn schema_triples_are_replicated_everywhere() {
        let ds = chain_dataset();
        let parts = partition_dataset(
            &ds,
            &PartitionConfig {
                shards: 3,
                partitioner: PartitionerKind::Greedy,
                halo: 1,
            },
        );
        for shard in &parts.shards {
            let c = shard.dictionary.id_of(&Term::iri("http://ex/C")).unwrap();
            let sub = shard
                .dictionary
                .id_of(&Term::iri(vocab::RDFS_SUBCLASSOF))
                .unwrap();
            let d = shard.dictionary.id_of(&Term::iri("http://ex/D")).unwrap();
            assert!(shard
                .triples
                .contains(&turbohom_rdf::Triple::new(c, sub, d)));
        }
    }

    #[test]
    fn halo_replicates_neighbours_of_owned_terms() {
        let ds = chain_dataset();
        let parts = partition_dataset(
            &ds,
            &PartitionConfig {
                shards: 4,
                partitioner: PartitionerKind::Hash,
                halo: 2,
            },
        );
        // Every shard that owns a chain vertex a_i must also hold the edge
        // a_i → a_{i+1} *and* the next edge out (its endpoint is 1 hop away,
        // the following one 2 hops — both within the halo).
        let mut scratch = String::new();
        for i in 0..8usize {
            let a = Term::iri(format!("http://ex/a{i}"));
            let owner = parts.ownership.owner(&a, &mut scratch);
            let shard = &parts.shards[owner];
            for j in [i, i + 1] {
                let s = Term::iri(format!("http://ex/a{j}"));
                let o = Term::iri(format!("http://ex/a{}", j + 1));
                let p = Term::iri("http://ex/next");
                let present = match (
                    shard.dictionary.id_of(&s),
                    shard.dictionary.id_of(&p),
                    shard.dictionary.id_of(&o),
                ) {
                    (Some(s), Some(p), Some(o)) => {
                        shard.triples.contains(&turbohom_rdf::Triple::new(s, p, o))
                    }
                    _ => false,
                };
                assert!(
                    present,
                    "edge a{j}→a{} missing from shard owning a{i}",
                    j + 1
                );
            }
        }
    }

    #[test]
    fn greedy_tables_balance_and_round_trip() {
        let ds = chain_dataset();
        let parts = partition_dataset(
            &ds,
            &PartitionConfig {
                shards: 4,
                partitioner: PartitionerKind::Greedy,
                halo: 2,
            },
        );
        let table = parts.ownership.bucket_table().to_vec();
        assert_eq!(table.len(), GREEDY_BUCKETS);
        // The table reconstructs an identical ownership.
        let rebuilt = Ownership::greedy(4, table).unwrap();
        assert_eq!(rebuilt, parts.ownership);
        // Malformed tables are rejected.
        assert!(Ownership::greedy(4, vec![0u16; 7]).is_none());
        assert!(Ownership::greedy(2, vec![5u16; GREEDY_BUCKETS]).is_none());
    }

    #[test]
    fn ownership_is_deterministic_across_builds() {
        let ds = chain_dataset();
        let config = PartitionConfig {
            shards: 8,
            partitioner: PartitionerKind::Hash,
            halo: 2,
        };
        let a = partition_dataset(&ds, &config);
        let b = partition_dataset(&ds, &config);
        assert_eq!(a.ownership, b.ownership);
        for (x, y) in a.shards.iter().zip(&b.shards) {
            assert_eq!(x.len(), y.len());
        }
    }
}
