//! Per-partition summary graphs and the query footprint matched against
//! them.
//!
//! A [`ShardSummary`] is deliberately tiny: the *exact* set of predicate
//! hashes, the *exact* set of class hashes (objects of `rdf:type`), and a
//! Bloom filter over every subject/object term hash. Matching a query's
//! constant [`footprint`] against a summary costs a handful of set probes,
//! and a miss proves the shard cannot hold a single result — the shard is
//! pruned before any candidate-region computation runs.
//!
//! Soundness rests on halo containment: if a shard holds at least one
//! result, every triple of that result is present in the shard (see
//! `docs/SHARDING.md`), so each constant of the query's *required* part
//! appears in the shard and therefore in its summary. Constants inside
//! `OPTIONAL` groups never prune — an optional part may legitimately match
//! nowhere.

use crate::{is_schema_predicate, term_hash};
use std::collections::HashSet;
use turbohom_rdf::{vocab, Dataset, Term};
use turbohom_sparql::{GroupPattern, Query};

/// A split-Bloom filter over 64-bit term hashes (two probes derived from
/// the one hash, ~8 bits per expected item rounded up to a power of two).
#[derive(Debug, Clone)]
pub struct Bloom {
    bits: Vec<u64>,
    mask: u64,
}

impl Bloom {
    /// Creates a filter sized for roughly `items` insertions.
    pub fn with_capacity(items: usize) -> Bloom {
        let bits = (items.max(16) * 8).next_power_of_two();
        Bloom {
            bits: vec![0u64; bits / 64],
            mask: bits as u64 - 1,
        }
    }

    fn probes(&self, h: u64) -> [u64; 2] {
        // Double hashing from one 64-bit value: the raw hash plus a
        // Fibonacci-scrambled second probe.
        let h2 = h.wrapping_mul(0x9e37_79b9_7f4a_7c15).rotate_left(32);
        [h & self.mask, h2 & self.mask]
    }

    /// Inserts a hash.
    pub fn insert(&mut self, h: u64) {
        for p in self.probes(h) {
            self.bits[(p / 64) as usize] |= 1u64 << (p % 64);
        }
    }

    /// Returns `false` only if the hash was definitely never inserted.
    pub fn contains(&self, h: u64) -> bool {
        self.probes(h)
            .into_iter()
            .all(|p| self.bits[(p / 64) as usize] & (1u64 << (p % 64)) != 0)
    }
}

/// The summary graph of one shard.
#[derive(Debug, Clone)]
pub struct ShardSummary {
    /// Exact set of predicate term hashes present in the shard.
    predicates: HashSet<u64>,
    /// Exact set of class hashes: objects of `rdf:type` triples.
    classes: HashSet<u64>,
    /// Bloom filter over every subject and object term hash.
    terms: Bloom,
}

impl ShardSummary {
    /// Scans a shard dataset and builds its summary. Summaries are rebuilt
    /// at boot rather than persisted — the scan is one pass over the shard's
    /// triples and hashes each distinct term once.
    pub fn build(dataset: &Dataset) -> ShardSummary {
        let n = dataset.dictionary.len();
        // Hash each distinct term once, not once per triple.
        let mut hashes: Vec<u64> = vec![0; n];
        let mut scratch = String::new();
        for (id, term) in dataset.dictionary.iter() {
            hashes[id.index()] = crate::term_hash_into(&term, &mut scratch);
        }
        let type_id = dataset.rdf_type_id();
        let mut predicates = HashSet::new();
        let mut classes = HashSet::new();
        let mut terms = Bloom::with_capacity(dataset.dictionary.len());
        for t in dataset.triples.iter() {
            predicates.insert(hashes[t.p.index()]);
            if Some(t.p) == type_id {
                classes.insert(hashes[t.o.index()]);
            }
            terms.insert(hashes[t.s.index()]);
            terms.insert(hashes[t.o.index()]);
        }
        ShardSummary {
            predicates,
            classes,
            terms,
        }
    }

    /// Exact membership: is the predicate with hash `h` present?
    pub fn contains_predicate(&self, h: u64) -> bool {
        self.predicates.contains(&h)
    }

    /// Exact membership: does any instance of the class with hash `h` exist?
    pub fn contains_class(&self, h: u64) -> bool {
        self.classes.contains(&h)
    }

    /// Probabilistic membership: may the term with hash `h` appear in a
    /// subject or object position? `false` is definite absence.
    pub fn may_contain_term(&self, h: u64) -> bool {
        self.terms.contains(h)
    }

    /// Number of distinct predicates (the summary's "signature width").
    pub fn predicate_count(&self) -> usize {
        self.predicates.len()
    }

    /// Number of distinct instantiated classes.
    pub fn class_count(&self) -> usize {
        self.classes.len()
    }
}

/// The constants of a query's required part, pre-hashed for summary probes.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct QueryFootprint {
    /// Hashes of constant non-type, non-schema predicates.
    pub predicates: Vec<u64>,
    /// Hashes of constant classes (`rdf:type` objects).
    pub classes: Vec<u64>,
    /// Hashes of constant subject/object terms of non-schema triples.
    pub terms: Vec<u64>,
}

/// Extracts the prunable constants of `query`'s required part. `OPTIONAL`
/// groups and schema triples (replicated everywhere) contribute nothing.
pub fn footprint(query: &Query) -> QueryFootprint {
    let mut fp = QueryFootprint::default();
    collect_group(&query.pattern, &mut fp);
    fp.predicates.sort_unstable();
    fp.predicates.dedup();
    fp.classes.sort_unstable();
    fp.classes.dedup();
    fp.terms.sort_unstable();
    fp.terms.dedup();
    fp
}

fn collect_group(group: &GroupPattern, fp: &mut QueryFootprint) {
    for t in &group.triples {
        let predicate_iri = t.predicate.as_constant().and_then(Term::as_iri);
        if predicate_iri.is_some_and(is_schema_predicate) {
            continue; // replicated everywhere — never prunes
        }
        let is_type = predicate_iri == Some(vocab::RDF_TYPE);
        if is_type {
            if let Some(class) = t.object.as_constant() {
                fp.classes.push(term_hash(class));
            }
            if let Some(s) = t.subject.as_constant() {
                fp.terms.push(term_hash(s));
            }
        } else {
            if let Some(p) = t.predicate.as_constant() {
                fp.predicates.push(term_hash(p));
            }
            for endpoint in [&t.subject, &t.object] {
                if let Some(c) = endpoint.as_constant() {
                    fp.terms.push(term_hash(c));
                }
            }
        }
    }
    // UNION branches are alternatives, not conjuncts: only constants common
    // to every branch could prune, so (conservatively) skip them. The
    // sharded executor rejects UNION queries anyway; this keeps `footprint`
    // sound if that ever changes.
    let _ = &group.unions;
}

/// Returns `true` if the summary *proves* the shard holds no result for a
/// query with this footprint.
pub fn summary_prunes(summary: &ShardSummary, fp: &QueryFootprint) -> bool {
    fp.predicates
        .iter()
        .any(|&h| !summary.contains_predicate(h))
        || fp.classes.iter().any(|&h| !summary.contains_class(h))
        || fp.terms.iter().any(|&h| !summary.may_contain_term(h))
}

#[cfg(test)]
mod tests {
    use super::*;
    use turbohom_sparql::parse_query;

    fn sample_dataset() -> Dataset {
        let mut ds = Dataset::new();
        ds.insert_iris("http://ex/s1", vocab::RDF_TYPE, "http://ex/Student");
        ds.insert_iris("http://ex/s1", "http://ex/memberOf", "http://ex/d1");
        ds.insert_iris("http://ex/d1", vocab::RDF_TYPE, "http://ex/Department");
        ds
    }

    #[test]
    fn bloom_has_no_false_negatives() {
        let mut b = Bloom::with_capacity(100);
        let inserted: Vec<u64> = (0..100).map(|i| term_hash(&Term::integer(i))).collect();
        for &h in &inserted {
            b.insert(h);
        }
        for &h in &inserted {
            assert!(b.contains(h));
        }
        // A fresh filter contains nothing.
        let empty = Bloom::with_capacity(100);
        assert!(inserted.iter().all(|&h| !empty.contains(h)));
    }

    #[test]
    fn summary_reflects_the_dataset() {
        let s = ShardSummary::build(&sample_dataset());
        assert!(s.contains_predicate(term_hash(&Term::iri("http://ex/memberOf"))));
        assert!(!s.contains_predicate(term_hash(&Term::iri("http://ex/advisor"))));
        assert!(s.contains_class(term_hash(&Term::iri("http://ex/Student"))));
        assert!(!s.contains_class(term_hash(&Term::iri("http://ex/Professor"))));
        assert!(s.may_contain_term(term_hash(&Term::iri("http://ex/s1"))));
        assert!(!s.may_contain_term(term_hash(&Term::iri("http://ex/absent"))));
        assert_eq!(s.predicate_count(), 2);
        assert_eq!(s.class_count(), 2);
    }

    #[test]
    fn footprint_collects_required_constants_only() {
        let q = parse_query(&format!(
            "SELECT ?x WHERE {{ \
               ?x <{}> <http://ex/Student> . \
               ?x <http://ex/memberOf> <http://ex/d1> . \
               ?c <{}> <http://ex/Thing> . \
               OPTIONAL {{ ?x <http://ex/email> <http://ex/e1> . }} \
             }}",
            vocab::RDF_TYPE,
            vocab::RDFS_SUBCLASSOF,
        ))
        .unwrap();
        let fp = footprint(&q);
        assert_eq!(fp.classes, vec![term_hash(&Term::iri("http://ex/Student"))]);
        assert_eq!(
            fp.predicates,
            vec![term_hash(&Term::iri("http://ex/memberOf"))]
        );
        // d1 (required object) is in the term footprint; the schema triple's
        // constants and the OPTIONAL e1 are not.
        assert!(fp.terms.contains(&term_hash(&Term::iri("http://ex/d1"))));
        assert!(!fp.terms.contains(&term_hash(&Term::iri("http://ex/Thing"))));
        assert!(!fp.terms.contains(&term_hash(&Term::iri("http://ex/e1"))));
    }

    #[test]
    fn pruning_fires_on_missing_constants_only() {
        let summary = ShardSummary::build(&sample_dataset());
        let hit =
            parse_query("SELECT ?x WHERE { ?x <http://ex/memberOf> <http://ex/d1> . }").unwrap();
        assert!(!summary_prunes(&summary, &footprint(&hit)));
        let miss_pred =
            parse_query("SELECT ?x WHERE { ?x <http://ex/advisor> <http://ex/d1> . }").unwrap();
        assert!(summary_prunes(&summary, &footprint(&miss_pred)));
        let miss_term =
            parse_query("SELECT ?x WHERE { ?x <http://ex/memberOf> <http://ex/d9> . }").unwrap();
        assert!(summary_prunes(&summary, &footprint(&miss_term)));
        // An all-variable query never prunes.
        let open = parse_query("SELECT ?s WHERE { ?s ?p ?o . }").unwrap();
        assert_eq!(footprint(&open), QueryFootprint::default());
        assert!(!summary_prunes(&summary, &footprint(&open)));
    }
}
