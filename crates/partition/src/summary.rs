//! Per-partition summary graphs and the query footprint matched against
//! them.
//!
//! A [`ShardSummary`] is deliberately tiny: the *exact* set of predicate
//! hashes, the *exact* set of class hashes (objects of `rdf:type`), and a
//! Bloom filter over every subject/object term hash. Matching a query's
//! constant [`footprint`] against a summary costs a handful of set probes,
//! and a miss proves the shard cannot hold a single result — the shard is
//! pruned before any candidate-region computation runs.
//!
//! Soundness rests on halo containment: if a shard holds at least one
//! result, every triple of that result is present in the shard (see
//! `docs/SHARDING.md`), so each constant of the query's *required* part
//! appears in the shard and therefore in its summary. Constants inside
//! `OPTIONAL` groups never prune — an optional part may legitimately match
//! nowhere.

use crate::{is_schema_predicate, term_hash};
use std::collections::HashSet;
use turbohom_rdf::{vocab, Dataset, Term};
use turbohom_sparql::{GroupPattern, Query};

/// A split-Bloom filter over 64-bit term hashes (two probes derived from
/// the one hash, ~8 bits per expected item rounded up to a power of two).
#[derive(Debug, Clone)]
pub struct Bloom {
    bits: Vec<u64>,
    mask: u64,
}

impl Bloom {
    /// Creates a filter sized for roughly `items` insertions.
    pub fn with_capacity(items: usize) -> Bloom {
        let bits = (items.max(16) * 8).next_power_of_two();
        Bloom {
            bits: vec![0u64; bits / 64],
            mask: bits as u64 - 1,
        }
    }

    fn probes(&self, h: u64) -> [u64; 2] {
        // Double hashing from one 64-bit value: the raw hash plus a
        // Fibonacci-scrambled second probe.
        let h2 = h.wrapping_mul(0x9e37_79b9_7f4a_7c15).rotate_left(32);
        [h & self.mask, h2 & self.mask]
    }

    /// Inserts a hash.
    pub fn insert(&mut self, h: u64) {
        for p in self.probes(h) {
            self.bits[(p / 64) as usize] |= 1u64 << (p % 64);
        }
    }

    /// Returns `false` only if the hash was definitely never inserted.
    pub fn contains(&self, h: u64) -> bool {
        self.probes(h)
            .into_iter()
            .all(|p| self.bits[(p / 64) as usize] & (1u64 << (p % 64)) != 0)
    }
}

/// The summary graph of one shard.
#[derive(Debug, Clone)]
pub struct ShardSummary {
    /// Exact set of predicate term hashes present in the shard.
    predicates: HashSet<u64>,
    /// Exact set of class hashes: objects of `rdf:type` triples.
    classes: HashSet<u64>,
    /// Bloom filter over every subject and object term hash.
    terms: Bloom,
}

impl ShardSummary {
    /// Scans a shard dataset and builds its summary. Summaries are rebuilt
    /// at boot rather than persisted — the scan is one pass over the shard's
    /// triples and hashes each distinct term once.
    pub fn build(dataset: &Dataset) -> ShardSummary {
        let n = dataset.dictionary.len();
        // Hash each distinct term once, not once per triple.
        let mut hashes: Vec<u64> = vec![0; n];
        let mut scratch = String::new();
        for (id, term) in dataset.dictionary.iter() {
            hashes[id.index()] = crate::term_hash_into(&term, &mut scratch);
        }
        let type_id = dataset.rdf_type_id();
        let mut predicates = HashSet::new();
        let mut classes = HashSet::new();
        let mut terms = Bloom::with_capacity(dataset.dictionary.len());
        for t in dataset.triples.iter() {
            predicates.insert(hashes[t.p.index()]);
            if Some(t.p) == type_id {
                classes.insert(hashes[t.o.index()]);
            }
            terms.insert(hashes[t.s.index()]);
            terms.insert(hashes[t.o.index()]);
        }
        ShardSummary {
            predicates,
            classes,
            terms,
        }
    }

    /// Exact membership: is the predicate with hash `h` present?
    pub fn contains_predicate(&self, h: u64) -> bool {
        self.predicates.contains(&h)
    }

    /// Exact membership: does any instance of the class with hash `h` exist?
    pub fn contains_class(&self, h: u64) -> bool {
        self.classes.contains(&h)
    }

    /// Probabilistic membership: may the term with hash `h` appear in a
    /// subject or object position? `false` is definite absence.
    pub fn may_contain_term(&self, h: u64) -> bool {
        self.terms.contains(h)
    }

    /// Number of distinct predicates (the summary's "signature width").
    pub fn predicate_count(&self) -> usize {
        self.predicates.len()
    }

    /// Number of distinct instantiated classes.
    pub fn class_count(&self) -> usize {
        self.classes.len()
    }
}

/// The constants of a query's required part, pre-hashed for summary probes.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct QueryFootprint {
    /// Hashes of constant non-type, non-schema predicates.
    pub predicates: Vec<u64>,
    /// Hashes of constant classes (`rdf:type` objects).
    pub classes: Vec<u64>,
    /// Hashes of constant subject/object terms of non-schema triples.
    pub terms: Vec<u64>,
}

/// One pre-hashed constant together with its human-readable rendering, so a
/// prune verdict can *name* the deciding term rather than print a hash.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct LabeledConstant {
    /// The [`term_hash`] probed against the summary.
    pub hash: u64,
    /// The term's N-Triples rendering (what the hash was computed over).
    pub label: String,
}

/// A [`QueryFootprint`] that keeps the term renderings alongside the hashes.
/// Used by EXPLAIN, where verdicts must be legible; the hot path keeps the
/// hash-only [`QueryFootprint`].
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct LabeledFootprint {
    /// Constant non-type, non-schema predicates.
    pub predicates: Vec<LabeledConstant>,
    /// Constant classes (`rdf:type` objects).
    pub classes: Vec<LabeledConstant>,
    /// Constant subject/object terms of non-schema triples.
    pub terms: Vec<LabeledConstant>,
}

impl LabeledFootprint {
    /// Drops the labels, yielding the probe-only footprint.
    pub fn to_footprint(&self) -> QueryFootprint {
        QueryFootprint {
            predicates: self.predicates.iter().map(|c| c.hash).collect(),
            classes: self.classes.iter().map(|c| c.hash).collect(),
            terms: self.terms.iter().map(|c| c.hash).collect(),
        }
    }
}

/// Extracts the prunable constants of `query`'s required part. `OPTIONAL`
/// groups and schema triples (replicated everywhere) contribute nothing.
pub fn footprint(query: &Query) -> QueryFootprint {
    labeled_footprint(query).to_footprint()
}

/// Like [`footprint`], but keeping each constant's rendering so verdicts can
/// name the term that decided a prune.
pub fn labeled_footprint(query: &Query) -> LabeledFootprint {
    let mut fp = LabeledFootprint::default();
    collect_group(&query.pattern, &mut fp);
    for list in [&mut fp.predicates, &mut fp.classes, &mut fp.terms] {
        list.sort_unstable_by(|a, b| a.hash.cmp(&b.hash).then_with(|| a.label.cmp(&b.label)));
        list.dedup();
    }
    fp
}

fn labeled(term: &Term) -> LabeledConstant {
    LabeledConstant {
        hash: term_hash(term),
        label: term.to_string(),
    }
}

fn collect_group(group: &GroupPattern, fp: &mut LabeledFootprint) {
    for t in &group.triples {
        let predicate_iri = t.predicate.as_constant().and_then(Term::as_iri);
        if predicate_iri.is_some_and(is_schema_predicate) {
            continue; // replicated everywhere — never prunes
        }
        let is_type = predicate_iri == Some(vocab::RDF_TYPE);
        if is_type {
            if let Some(class) = t.object.as_constant() {
                fp.classes.push(labeled(class));
            }
            if let Some(s) = t.subject.as_constant() {
                fp.terms.push(labeled(s));
            }
        } else {
            if let Some(p) = t.predicate.as_constant() {
                fp.predicates.push(labeled(p));
            }
            for endpoint in [&t.subject, &t.object] {
                if let Some(c) = endpoint.as_constant() {
                    fp.terms.push(labeled(c));
                }
            }
        }
    }
    // UNION branches are alternatives, not conjuncts: only constants common
    // to every branch could prune, so (conservatively) skip them. The
    // sharded executor rejects UNION queries anyway; this keeps `footprint`
    // sound if that ever changes.
    let _ = &group.unions;
}

/// Returns `true` if the summary *proves* the shard holds no result for a
/// query with this footprint.
pub fn summary_prunes(summary: &ShardSummary, fp: &QueryFootprint) -> bool {
    fp.predicates
        .iter()
        .any(|&h| !summary.contains_predicate(h))
        || fp.classes.iter().any(|&h| !summary.contains_class(h))
        || fp.terms.iter().any(|&h| !summary.may_contain_term(h))
}

/// Which summary structure decided a prune.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum PruneCheck {
    /// The exact predicate-hash set lacked a constant predicate.
    Predicate,
    /// The exact class-hash set lacked a constant `rdf:type` object.
    Class,
    /// The Bloom filter over subject/object terms proved a constant absent.
    Term,
}

impl PruneCheck {
    /// Short machine-readable name of the check (`"predicate"`, `"class"`,
    /// `"term"`).
    pub fn name(&self) -> &'static str {
        match self {
            PruneCheck::Predicate => "predicate",
            PruneCheck::Class => "class",
            PruneCheck::Term => "term",
        }
    }

    /// Whether the check is exact set membership or a Bloom-filter probe.
    pub fn mode(&self) -> &'static str {
        match self {
            PruneCheck::Predicate | PruneCheck::Class => "exact",
            PruneCheck::Term => "bloom",
        }
    }
}

/// The outcome of probing one shard summary with a query footprint.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum SummaryVerdict {
    /// No check fired: the shard may hold results and must be executed.
    Live,
    /// A check proved the shard empty for this query.
    Pruned {
        /// Which summary structure fired.
        check: PruneCheck,
        /// The rendering of the constant that was proven absent.
        term: String,
    },
}

impl SummaryVerdict {
    /// `true` when the verdict is [`SummaryVerdict::Pruned`].
    pub fn is_pruned(&self) -> bool {
        matches!(self, SummaryVerdict::Pruned { .. })
    }
}

/// Like [`summary_prunes`], but reporting *which* check fired and on which
/// constant. Probes in the same order as `summary_prunes`, so
/// `summary_verdict(..).is_pruned() == summary_prunes(..)` for the same
/// query.
pub fn summary_verdict(summary: &ShardSummary, fp: &LabeledFootprint) -> SummaryVerdict {
    for c in &fp.predicates {
        if !summary.contains_predicate(c.hash) {
            return SummaryVerdict::Pruned {
                check: PruneCheck::Predicate,
                term: c.label.clone(),
            };
        }
    }
    for c in &fp.classes {
        if !summary.contains_class(c.hash) {
            return SummaryVerdict::Pruned {
                check: PruneCheck::Class,
                term: c.label.clone(),
            };
        }
    }
    for c in &fp.terms {
        if !summary.may_contain_term(c.hash) {
            return SummaryVerdict::Pruned {
                check: PruneCheck::Term,
                term: c.label.clone(),
            };
        }
    }
    SummaryVerdict::Live
}

#[cfg(test)]
mod tests {
    use super::*;
    use turbohom_sparql::parse_query;

    fn sample_dataset() -> Dataset {
        let mut ds = Dataset::new();
        ds.insert_iris("http://ex/s1", vocab::RDF_TYPE, "http://ex/Student");
        ds.insert_iris("http://ex/s1", "http://ex/memberOf", "http://ex/d1");
        ds.insert_iris("http://ex/d1", vocab::RDF_TYPE, "http://ex/Department");
        ds
    }

    #[test]
    fn bloom_has_no_false_negatives() {
        let mut b = Bloom::with_capacity(100);
        let inserted: Vec<u64> = (0..100).map(|i| term_hash(&Term::integer(i))).collect();
        for &h in &inserted {
            b.insert(h);
        }
        for &h in &inserted {
            assert!(b.contains(h));
        }
        // A fresh filter contains nothing.
        let empty = Bloom::with_capacity(100);
        assert!(inserted.iter().all(|&h| !empty.contains(h)));
    }

    #[test]
    fn summary_reflects_the_dataset() {
        let s = ShardSummary::build(&sample_dataset());
        assert!(s.contains_predicate(term_hash(&Term::iri("http://ex/memberOf"))));
        assert!(!s.contains_predicate(term_hash(&Term::iri("http://ex/advisor"))));
        assert!(s.contains_class(term_hash(&Term::iri("http://ex/Student"))));
        assert!(!s.contains_class(term_hash(&Term::iri("http://ex/Professor"))));
        assert!(s.may_contain_term(term_hash(&Term::iri("http://ex/s1"))));
        assert!(!s.may_contain_term(term_hash(&Term::iri("http://ex/absent"))));
        assert_eq!(s.predicate_count(), 2);
        assert_eq!(s.class_count(), 2);
    }

    #[test]
    fn footprint_collects_required_constants_only() {
        let q = parse_query(&format!(
            "SELECT ?x WHERE {{ \
               ?x <{}> <http://ex/Student> . \
               ?x <http://ex/memberOf> <http://ex/d1> . \
               ?c <{}> <http://ex/Thing> . \
               OPTIONAL {{ ?x <http://ex/email> <http://ex/e1> . }} \
             }}",
            vocab::RDF_TYPE,
            vocab::RDFS_SUBCLASSOF,
        ))
        .unwrap();
        let fp = footprint(&q);
        assert_eq!(fp.classes, vec![term_hash(&Term::iri("http://ex/Student"))]);
        assert_eq!(
            fp.predicates,
            vec![term_hash(&Term::iri("http://ex/memberOf"))]
        );
        // d1 (required object) is in the term footprint; the schema triple's
        // constants and the OPTIONAL e1 are not.
        assert!(fp.terms.contains(&term_hash(&Term::iri("http://ex/d1"))));
        assert!(!fp.terms.contains(&term_hash(&Term::iri("http://ex/Thing"))));
        assert!(!fp.terms.contains(&term_hash(&Term::iri("http://ex/e1"))));
    }

    #[test]
    fn pruning_fires_on_missing_constants_only() {
        let summary = ShardSummary::build(&sample_dataset());
        let hit =
            parse_query("SELECT ?x WHERE { ?x <http://ex/memberOf> <http://ex/d1> . }").unwrap();
        assert!(!summary_prunes(&summary, &footprint(&hit)));
        let miss_pred =
            parse_query("SELECT ?x WHERE { ?x <http://ex/advisor> <http://ex/d1> . }").unwrap();
        assert!(summary_prunes(&summary, &footprint(&miss_pred)));
        let miss_term =
            parse_query("SELECT ?x WHERE { ?x <http://ex/memberOf> <http://ex/d9> . }").unwrap();
        assert!(summary_prunes(&summary, &footprint(&miss_term)));
        // An all-variable query never prunes.
        let open = parse_query("SELECT ?s WHERE { ?s ?p ?o . }").unwrap();
        assert_eq!(footprint(&open), QueryFootprint::default());
        assert!(!summary_prunes(&summary, &footprint(&open)));
    }

    #[test]
    fn verdict_names_the_deciding_check_and_term() {
        let summary = ShardSummary::build(&sample_dataset());
        let miss_pred =
            parse_query("SELECT ?x WHERE { ?x <http://ex/advisor> <http://ex/d1> . }").unwrap();
        assert_eq!(
            summary_verdict(&summary, &labeled_footprint(&miss_pred)),
            SummaryVerdict::Pruned {
                check: PruneCheck::Predicate,
                term: "<http://ex/advisor>".to_string(),
            }
        );
        let miss_class = parse_query(&format!(
            "SELECT ?x WHERE {{ ?x <{}> <http://ex/Professor> . }}",
            vocab::RDF_TYPE
        ))
        .unwrap();
        assert_eq!(
            summary_verdict(&summary, &labeled_footprint(&miss_class)),
            SummaryVerdict::Pruned {
                check: PruneCheck::Class,
                term: "<http://ex/Professor>".to_string(),
            }
        );
        let miss_term =
            parse_query("SELECT ?x WHERE { ?x <http://ex/memberOf> <http://ex/d9> . }").unwrap();
        let verdict = summary_verdict(&summary, &labeled_footprint(&miss_term));
        assert_eq!(
            verdict,
            SummaryVerdict::Pruned {
                check: PruneCheck::Term,
                term: "<http://ex/d9>".to_string(),
            }
        );
        match verdict {
            SummaryVerdict::Pruned { check, .. } => {
                assert_eq!(check.name(), "term");
                assert_eq!(check.mode(), "bloom");
            }
            SummaryVerdict::Live => unreachable!(),
        }
        assert_eq!(PruneCheck::Predicate.mode(), "exact");
        assert_eq!(PruneCheck::Class.mode(), "exact");
        let hit =
            parse_query("SELECT ?x WHERE { ?x <http://ex/memberOf> <http://ex/d1> . }").unwrap();
        assert_eq!(
            summary_verdict(&summary, &labeled_footprint(&hit)),
            SummaryVerdict::Live
        );
    }

    #[test]
    fn verdict_agrees_with_summary_prunes() {
        let summary = ShardSummary::build(&sample_dataset());
        for q in [
            "SELECT ?x WHERE { ?x <http://ex/memberOf> <http://ex/d1> . }",
            "SELECT ?x WHERE { ?x <http://ex/advisor> <http://ex/d1> . }",
            "SELECT ?x WHERE { ?x <http://ex/memberOf> <http://ex/d9> . }",
            "SELECT ?s WHERE { ?s ?p ?o . }",
        ] {
            let query = parse_query(q).unwrap();
            let lf = labeled_footprint(&query);
            assert_eq!(lf.to_footprint(), footprint(&query), "{q}");
            assert_eq!(
                summary_verdict(&summary, &lf).is_pruned(),
                summary_prunes(&summary, &footprint(&query)),
                "{q}"
            );
        }
    }
}
