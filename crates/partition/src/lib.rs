//! Data-graph partitioning and summary-graph pruning for sharded execution.
//!
//! The paper's TurboHOM++ wins by shrinking the search space *before*
//! enumeration; this crate extends the same idea to scale-out (ROADMAP
//! item 4, following Gai et al.'s partition-based summary-graph method):
//!
//! * [`partition_dataset`] deterministically splits a [`Dataset`] into `k`
//!   partitions by term ownership ([`Ownership`]: plain hash or a METIS-lite
//!   greedy bucket assignment), replicating a bounded *halo* of boundary
//!   adjacency into each partition so that a connected query never needs a
//!   distributed join.
//! * [`ShardSummary`] is the per-partition summary graph: the exact predicate
//!   and class signatures plus a Bloom filter over all subject/object terms.
//!   A query's constant [`footprint`] is matched against the summaries first,
//!   and whole partitions are skipped before any candidate-region
//!   computation runs.
//! * [`analyze_query`] decides whether a query is shardable at all (single
//!   union-free branch, every triple within the halo radius of an anchor)
//!   and picks the anchor term that makes scatter-gather results an *exact*
//!   multiset partition of the single-store answer.
//! * [`Manifest`] describes a saved set of per-shard snapshots so a sharded
//!   store can be booted from disk.
//!
//! Everything here is deliberately independent of the engine crates: it
//! speaks [`Dataset`]/[`Term`] on the data side and the SPARQL algebra on
//! the query side, so the coordinator in `turbohom-engine` stays thin.

mod manifest;
mod partitioner;
mod query;
mod summary;

pub use manifest::{Manifest, MANIFEST_FORMAT};
pub use partitioner::{
    partition_dataset, Ownership, PartitionConfig, PartitionedDataset, PartitionerKind,
    DEFAULT_HALO, GREEDY_BUCKETS,
};
pub use query::{analyze_query, Anchor, ShardQuery};
pub use summary::{
    footprint, labeled_footprint, summary_prunes, summary_verdict, Bloom, LabeledConstant,
    LabeledFootprint, PruneCheck, QueryFootprint, ShardSummary, SummaryVerdict,
};

use turbohom_rdf::{vocab, Term};

/// FNV-1a offset basis (64-bit).
const FNV_OFFSET: u64 = 0xcbf2_9ce4_8422_2325;
/// FNV-1a prime (64-bit).
const FNV_PRIME: u64 = 0x0000_0100_0000_01b3;

/// FNV-1a over a byte slice. The same function the query fingerprint uses;
/// kept dependency-free here so ownership is stable across processes.
pub fn fnv1a(bytes: &[u8]) -> u64 {
    let mut h = FNV_OFFSET;
    for &b in bytes {
        h ^= u64::from(b);
        h = h.wrapping_mul(FNV_PRIME);
    }
    h
}

/// The ownership hash of a term: FNV-1a over its N-Triples rendering.
/// Dictionary-independent, so every shard (and every process) agrees on
/// which shard owns a term regardless of local id assignment.
pub fn term_hash(term: &Term) -> u64 {
    let mut scratch = String::new();
    term_hash_into(term, &mut scratch)
}

/// Like [`term_hash`], rendering into a caller-owned scratch buffer so hot
/// loops (the coordinator's per-row ownership filter) never allocate.
pub fn term_hash_into(term: &Term, scratch: &mut String) -> u64 {
    use std::fmt::Write;
    scratch.clear();
    let _ = write!(scratch, "{term}");
    fnv1a(scratch.as_bytes())
}

/// Returns `true` for the RDFS schema predicates that are replicated into
/// every shard (`rdfs:subClassOf`, `rdfs:subPropertyOf`, `rdfs:domain`,
/// `rdfs:range`). Schema triples are tiny and global, so replication makes
/// any schema-touching pattern trivially satisfiable everywhere.
pub fn is_schema_predicate(iri: &str) -> bool {
    iri == vocab::RDFS_SUBCLASSOF
        || iri == vocab::RDFS_SUBPROPERTYOF
        || iri == vocab::RDFS_DOMAIN
        || iri == vocab::RDFS_RANGE
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fnv1a_matches_known_vectors() {
        assert_eq!(fnv1a(b""), 0xcbf2_9ce4_8422_2325);
        assert_eq!(fnv1a(b"a"), 0xaf63_dc4c_8601_ec8c);
    }

    #[test]
    fn term_hash_is_rendering_based_and_scratch_reusable() {
        let a = Term::iri("http://ex.org/a");
        let mut scratch = String::new();
        let h1 = term_hash(&a);
        let h2 = term_hash_into(&a, &mut scratch);
        assert_eq!(h1, h2);
        assert_eq!(scratch, "<http://ex.org/a>");
        // Different term kinds with the same inner text hash differently.
        assert_ne!(term_hash(&Term::iri("x")), term_hash(&Term::literal("x")));
        // The scratch buffer is reusable across terms.
        let h3 = term_hash_into(&Term::literal("x"), &mut scratch);
        assert_eq!(h3, term_hash(&Term::literal("x")));
    }

    #[test]
    fn schema_predicates_are_recognized() {
        assert!(is_schema_predicate(vocab::RDFS_SUBCLASSOF));
        assert!(is_schema_predicate(vocab::RDFS_SUBPROPERTYOF));
        assert!(is_schema_predicate(vocab::RDFS_DOMAIN));
        assert!(is_schema_predicate(vocab::RDFS_RANGE));
        assert!(!is_schema_predicate(vocab::RDF_TYPE));
        assert!(!is_schema_predicate("http://ex.org/p"));
    }
}
